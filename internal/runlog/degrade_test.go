package runlog_test

import (
	"errors"
	"reflect"
	"syscall"
	"testing"

	"mce/internal/runlog"
	"mce/internal/runlog/faultfs"
	"mce/internal/telemetry"
)

var degradeID = runlog.Identity{Graph: 0xabad1dea, Options: 0x5eed}

// driveToFirstDone opens a checkpoint over fs and runs the fixed prefix of
// a small run: plan 3 blocks, dispatch all, complete block {0,0}. The same
// prefix always writes the same bytes, which is what lets the tests place
// a byte budget at a chosen frame.
func driveToFirstDone(t *testing.T, dir string, fs runlog.FS, onDegrade func(error), met *telemetry.Engine) (*runlog.Checkpoint, [][]int32) {
	t.Helper()
	c, err := runlog.Open(dir, degradeID, runlog.Options{NoSync: true, FS: fs, OnDegrade: onDegrade, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	cl0 := [][]int32{{1, 2, 3}, {4, 7}}
	if err := c.BeginLevel(0, 3); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		c.BlockDispatched(runlog.BlockID{Level: 0, Plan: p})
	}
	if err := c.BlockDone(runlog.BlockID{Level: 0, Plan: 0}, cl0); err != nil {
		t.Fatal(err)
	}
	return c, cl0
}

// measureFirstDone reports how many bytes the driveToFirstDone prefix
// writes, so tests can set a budget that tears the next journal frame.
func measureFirstDone(t *testing.T) int64 {
	t.Helper()
	fs := faultfs.New(1 << 40)
	c, _ := driveToFirstDone(t, t.TempDir(), fs, nil, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return fs.Written()
}

// TestENOSPCMidCheckpointDegrades pins the tentpole guardrail: a full disk
// mid-run flips the checkpoint into a degraded mode where the run
// continues, every later observer call is a clean no-op, and the injected
// error is reported exactly once through OnDegrade.
func TestENOSPCMidCheckpointDegrades(t *testing.T) {
	prefix := measureFirstDone(t)
	dir := t.TempDir()
	var degradeErrs []error
	met := telemetry.NewEngine()
	fs := faultfs.New(prefix) // the very next write fails
	c, cl0 := driveToFirstDone(t, dir, fs, func(err error) { degradeErrs = append(degradeErrs, err) }, met)

	if c.Degraded() {
		t.Fatal("degraded before the budget ran out")
	}
	// This BlockDone's segment write (or its journal record) hits the full
	// disk. The batch must not fail.
	if err := c.BlockDone(runlog.BlockID{Level: 0, Plan: 1}, [][]int32{{8, 9}}); err != nil {
		t.Fatalf("BlockDone on a full disk must degrade, not fail: %v", err)
	}
	if !c.Degraded() {
		t.Fatal("checkpoint not degraded after ENOSPC")
	}
	if len(degradeErrs) != 1 || !errors.Is(degradeErrs[0], syscall.ENOSPC) {
		t.Fatalf("OnDegrade calls = %v, want exactly one ENOSPC", degradeErrs)
	}
	if !errors.Is(c.DegradeError(), syscall.ENOSPC) {
		t.Fatalf("DegradeError = %v, want ENOSPC", c.DegradeError())
	}
	if met.CheckpointDegraded.Load() != 1 {
		t.Fatal("CheckpointDegraded gauge not set")
	}
	// The rest of the run keeps going as no-ops.
	if err := c.BlockDone(runlog.BlockID{Level: 0, Plan: 2}, [][]int32{{5}}); err != nil {
		t.Fatal(err)
	}
	if err := c.EndLevel(0); err != nil {
		t.Fatal(err)
	}
	if err := c.FinishRun(); err != nil {
		t.Fatal(err)
	}
	if len(degradeErrs) != 1 {
		t.Fatalf("OnDegrade fired %d times, want once", len(degradeErrs))
	}
	if err := c.Close(); err != nil {
		t.Fatalf("degraded Close must be clean: %v", err)
	}

	// The journal is torn, never corrupt: a real-filesystem reopen replays
	// the durable prefix — block {0,0} done, nothing after it, and no
	// run-end claim from the degraded session.
	r, err := runlog.Open(dir, degradeID, runlog.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after degrade: %v", err)
	}
	defer r.Close()
	if r.Completed() {
		t.Fatal("degraded run must not be journaled as completed")
	}
	got, ok := r.DoneCliques(runlog.BlockID{Level: 0, Plan: 0})
	if !ok || !reflect.DeepEqual(got, cl0) {
		t.Fatalf("durable block lost: ok=%v got=%v", ok, got)
	}
	if _, ok := r.DoneCliques(runlog.BlockID{Level: 0, Plan: 1}); ok {
		t.Fatal("block completed after ENOSPC must not replay as done")
	}
}

// TestResumeAfterTornFrame pins the satellite: a journal frame torn
// mid-write by the injected error — a partial frame header, or a full
// header with a partial payload — must replay to the last durable record
// and resume cleanly.
func TestResumeAfterTornFrame(t *testing.T) {
	prefix := measureFirstDone(t)
	for name, extra := range map[string]int64{
		"mid-header":  3, // 3 of the next frame's 8 header bytes land
		"mid-payload": 9, // full header, 1 of the 2 payload bytes lands
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fs := faultfs.New(prefix + extra)
			c, cl0 := driveToFirstDone(t, dir, fs, nil, nil)
			// The next pure-journal append tears mid-frame.
			if err := c.EndLevel(0); err != nil {
				t.Fatal(err)
			}
			if !c.Degraded() {
				t.Fatal("torn append did not degrade")
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := runlog.Open(dir, degradeID, runlog.Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen after torn frame: %v", err)
			}
			if !r.Resumed() {
				t.Fatal("torn journal did not resume")
			}
			got, ok := r.DoneCliques(runlog.BlockID{Level: 0, Plan: 0})
			if !ok || !reflect.DeepEqual(got, cl0) {
				t.Fatalf("last durable block lost: ok=%v got=%v", ok, got)
			}
			// The truncated journal must accept new appends: finish the
			// run and check the completion survives another reopen.
			for p := 1; p < 3; p++ {
				if err := r.BlockDone(runlog.BlockID{Level: 0, Plan: p}, [][]int32{{int32(p)}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.EndLevel(0); err != nil {
				t.Fatal(err)
			}
			if err := r.FinishRun(); err != nil {
				t.Fatal(err)
			}
			if r.Degraded() {
				t.Fatal("healthy resume reported degraded")
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			fin, err := runlog.Open(dir, degradeID, runlog.Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer fin.Close()
			if !fin.Completed() {
				t.Fatal("resumed run not journaled as completed")
			}
		})
	}
}
