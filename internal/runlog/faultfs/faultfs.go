// Package faultfs wraps the real filesystem with deterministic write-error
// injection for chaos-testing the runlog write paths. It models a disk that
// fills up mid-run: every write consumes a byte budget, and the write that
// would exceed it lands only partially — a torn journal frame or a half
// segment, exactly what a real ENOSPC leaves behind — before the injected
// error surfaces. Reads, and writes before the budget runs out, pass
// through untouched, so a checkpoint directory written through faultfs can
// be reopened with the real filesystem to test recovery.
package faultfs

import (
	"os"
	"sync/atomic"
	"syscall"

	"mce/internal/runlog"
)

// FS is a runlog.FS that injects a write failure once Budget bytes have
// been written across all files opened through it.
type FS struct {
	// Err is returned by the failing write and every write after it.
	// Defaults to syscall.ENOSPC wrapped in an *os.PathError.
	Err error

	written atomic.Int64
	budget  int64
}

// New returns an FS whose writes start failing after budget total bytes.
func New(budget int64) *FS { return &FS{budget: budget} }

// Written reports the total bytes actually written so far.
func (fs *FS) Written() int64 { return fs.written.Load() }

func (fs *FS) errFor(name string) error {
	if fs.Err != nil {
		return fs.Err
	}
	return &os.PathError{Op: "write", Path: name, Err: syscall.ENOSPC}
}

func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (runlog.File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: f, fs: fs, name: name}, nil
}

func (fs *FS) Open(name string) (runlog.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{File: f, fs: fs, name: name}, nil
}

func (fs *FS) Create(name string) (runlog.File, error) {
	return fs.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (fs *FS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (fs *FS) Remove(name string) error             { return os.Remove(name) }
func (fs *FS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

// file charges every write against the shared budget. The failing write
// ships the part of its payload that still fits — torn, like a real full
// disk — and reports the injected error.
type file struct {
	*os.File
	fs   *FS
	name string
}

func (f *file) Write(p []byte) (int, error) {
	for {
		used := f.fs.written.Load()
		rem := f.fs.budget - used
		if rem >= int64(len(p)) {
			if !f.fs.written.CompareAndSwap(used, used+int64(len(p))) {
				continue
			}
			return f.File.Write(p)
		}
		if rem < 0 {
			rem = 0
		}
		if !f.fs.written.CompareAndSwap(used, used+rem) {
			continue
		}
		n, err := f.File.Write(p[:rem])
		if err == nil {
			err = f.fs.errFor(f.name)
		}
		return n, err
	}
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	// The journal only WriteAts its tiny magic header; charge it like a
	// write but without tearing (the header either fits or fails whole).
	if f.fs.written.Add(int64(len(p))) > f.fs.budget {
		return 0, f.fs.errFor(f.name)
	}
	return f.File.WriteAt(p, off)
}
