package runlog

import (
	"io"
	"os"
)

// FS abstracts the filesystem operations runlog performs, so tests can
// inject write failures (a full disk mid-checkpoint, a frame torn by a
// short write) without touching a real disk. The zero-value default used
// throughout is the real OS filesystem; see Options.FS.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
}

// File is the subset of *os.File the journal and segment writers rely on.
type File interface {
	io.ReadWriteCloser
	io.Seeker
	io.WriterAt
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
	Sync() error
}

// OSFS is the real filesystem; the default when Options.FS is nil.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OSFS) Open(name string) (File, error)               { return os.Open(name) }
func (OSFS) Create(name string) (File, error)             { return os.Create(name) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
