// Package runlog makes long enumeration runs crash-safe: a coordinator
// writes a durable write-ahead journal of its run identity and per-block
// lifecycle (planned → dispatched → done), streams every block's cliques
// into an idempotent on-disk segment named by the block's stable identity,
// and on restart replays the journal to skip completed work — so a run
// killed hours in resumes instead of re-enumerating, and resumed blocks are
// exactly-once in the merged output.
//
// The journal is a length-prefixed, CRC-32-framed record log. Appends are
// fsync'd (configurable), and replay truncates a torn tail — a record half
// written when the process died — back to the last intact record, the
// standard WAL recovery discipline. Record payloads are a type byte
// followed by uvarint fields, so the format is append-only-evolvable: an
// unknown record type is an error (newer writer), a short payload is
// corruption.
package runlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mce/internal/telemetry"
)

// journalMagic heads every journal file; the trailing byte is the format
// version.
var journalMagic = [5]byte{'M', 'C', 'E', 'J', 1}

// maxRecordLen bounds one record's payload; anything larger in a frame
// header is treated as corruption (a torn or overwritten length field), not
// an allocation request.
const maxRecordLen = 1 << 20

// record types. The lifecycle of one block is recLevel (planned, as part of
// its level's plan) → recDispatch → recDone.
const (
	recRunBegin byte = iota + 1 // identity of a fresh run
	recResume                   // a new coordinator session attached
	recLevel                    // one recursion level's block plan
	recDispatch                 // block handed to an executor
	recDone                     // block's cliques durably in its segment
	recLevelEnd                 // every block of the level is done
	recRunEnd                   // the run completed
)

// rec is one decoded journal record; unused fields are zero.
type rec struct {
	kind        byte
	graph, opts uint64 // recRunBegin / recResume
	level       int    // recLevel / recDispatch / recDone / recLevelEnd
	blocks      int    // recLevel: planned block count
	plan        int    // recDispatch / recDone: stable block index within the level
	count       int    // recDone: clique count
	digest      uint32 // recDone: cliqstore content digest of the block's cliques
}

// encode appends the record's payload (type byte + uvarint fields).
func (r *rec) encode(buf []byte) []byte {
	buf = append(buf, r.kind)
	put := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	switch r.kind {
	case recRunBegin, recResume:
		put(r.graph)
		put(r.opts)
	case recLevel:
		put(uint64(r.level))
		put(uint64(r.blocks))
	case recDispatch:
		put(uint64(r.level))
		put(uint64(r.plan))
	case recDone:
		put(uint64(r.level))
		put(uint64(r.plan))
		put(uint64(r.count))
		put(uint64(r.digest))
	case recLevelEnd:
		put(uint64(r.level))
	case recRunEnd:
	}
	return buf
}

// decodeRec parses one record payload.
func decodeRec(p []byte) (rec, error) {
	if len(p) == 0 {
		return rec{}, errors.New("runlog: empty record")
	}
	r := rec{kind: p[0]}
	p = p[1:]
	get := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errors.New("runlog: short record payload")
		}
		p = p[n:]
		return v, nil
	}
	getInt := func(dst *int) error {
		v, err := get()
		if err != nil {
			return err
		}
		if v > 1<<40 {
			return fmt.Errorf("runlog: implausible field value %d", v)
		}
		*dst = int(v)
		return nil
	}
	var err error
	switch r.kind {
	case recRunBegin, recResume:
		if r.graph, err = get(); err != nil {
			return r, err
		}
		if r.opts, err = get(); err != nil {
			return r, err
		}
	case recLevel:
		if err = errors.Join(getInt(&r.level), getInt(&r.blocks)); err != nil {
			return r, err
		}
	case recDispatch:
		if err = errors.Join(getInt(&r.level), getInt(&r.plan)); err != nil {
			return r, err
		}
	case recDone:
		var dig int
		if err = errors.Join(getInt(&r.level), getInt(&r.plan), getInt(&r.count), getInt(&dig)); err != nil {
			return r, err
		}
		r.digest = uint32(dig)
	case recLevelEnd:
		if err = getInt(&r.level); err != nil {
			return r, err
		}
	case recRunEnd:
	default:
		return r, fmt.Errorf("runlog: unknown record type %d (journal from a newer build?)", r.kind)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("runlog: %d trailing bytes in record type %d", len(p), r.kind)
	}
	return r, nil
}

// journal is the framed record log: every Append writes
// [len u32le][crc32 u32le][payload] and optionally fsyncs.
type journal struct {
	f    File
	sync bool
	met  *telemetry.Engine
	buf  []byte
	err  error // first write failure; the journal is dead afterwards
}

// append frames and writes one record; failures stick so a half-written
// frame is never followed by more records in the same session.
func (j *journal) append(r *rec) error {
	if j.err != nil {
		return j.err
	}
	j.buf = j.buf[:0]
	payload := r.encode(j.buf[:0])
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := j.f.Write(hdr[:]); err != nil {
		j.err = fmt.Errorf("runlog: journal write: %w", err)
		return j.err
	}
	if _, err := j.f.Write(payload); err != nil {
		j.err = fmt.Errorf("runlog: journal write: %w", err)
		return j.err
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			j.err = fmt.Errorf("runlog: journal sync: %w", err)
			return j.err
		}
	}
	if j.met != nil {
		j.met.CheckpointRecords.Inc()
		j.met.CheckpointBytes.Add(int64(len(hdr) + len(payload)))
	}
	return nil
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if j.err != nil {
		return j.err
	}
	return err
}

// replayJournal reads every intact record of the journal at path and
// reports the byte offset of the valid prefix. A torn tail — short frame,
// short payload, checksum mismatch, or an undecodable record — ends the
// replay at the last intact record; everything before a torn tail must
// decode, so corruption in the middle of the file surfaces as a short
// valid prefix rather than being skipped over.
//
// A missing or empty file replays to zero records at offset len(magic),
// i.e. a fresh journal.
func replayJournal(fs FS, path string) (recs []rec, validOff int64, err error) {
	f, err := fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, int64(len(journalMagic)), nil
		}
		return nil, 0, fmt.Errorf("runlog: open journal: %w", err)
	}
	defer f.Close()

	var magic [len(journalMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		// Shorter than the magic: the process died before the header hit
		// the disk. Treat as a fresh journal.
		return nil, int64(len(journalMagic)), nil
	}
	if magic != journalMagic {
		return nil, 0, fmt.Errorf("runlog: %s is not a run journal (bad magic)", path)
	}
	off := int64(len(journalMagic))
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, off, nil // clean end or torn frame header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > maxRecordLen {
			return recs, off, nil // torn or overwritten length
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, nil // torn or bit-rotted record
		}
		r, err := decodeRec(payload)
		if err != nil {
			return recs, off, nil // undecodable: stop at the last good record
		}
		recs = append(recs, r)
		off += int64(len(hdr)) + int64(plen)
	}
}

// openJournalForAppend opens (creating if absent) the journal at path,
// truncates any torn tail at validOff, and positions the write cursor at
// the end of the valid prefix.
func openJournalForAppend(fs FS, path string, validOff int64, syncWrites bool, met *telemetry.Engine) (*journal, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runlog: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runlog: stat journal: %w", err)
	}
	if st.Size() < int64(len(journalMagic)) {
		// Fresh (or header-torn) journal: write the magic from scratch.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("runlog: truncate journal: %w", err)
		}
		if _, err := f.WriteAt(journalMagic[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("runlog: write journal header: %w", err)
		}
		validOff = int64(len(journalMagic))
	} else if st.Size() > validOff {
		// Torn tail: cut back to the last intact record so the next append
		// starts a clean frame.
		if err := f.Truncate(validOff); err != nil {
			f.Close()
			return nil, fmt.Errorf("runlog: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runlog: seek journal: %w", err)
	}
	return &journal{f: f, sync: syncWrites, met: met}, nil
}
