package runlog

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mce/internal/cliqstore"
	"mce/internal/graph"
	"mce/internal/telemetry"
)

// Identity ties a checkpoint directory to one (graph, options) pair. A
// journal whose identity does not match the run being started is refused:
// resuming with a different graph or different plan-affecting options would
// silently merge incompatible block plans.
type Identity struct {
	// Graph is a digest of the input graph (GraphDigest).
	Graph uint64
	// Options is a digest of every option that shapes the block plan or
	// the result set: block size m, the greedy-decomposition tuning
	// (min adjacency, seed order, block-plan seed), the recursion cap and
	// any pinned combo. Transport and scheduling options are excluded —
	// they change how blocks run, never what they produce.
	Options uint64
}

// GraphDigest fingerprints a graph: FNV-64a over the node count and every
// adjacency list. Two graphs with the same digest are, for checkpointing
// purposes, the same input.
func GraphDigest(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeU64(uint64(g.N()))
	for v := int32(0); v < int32(g.N()); v++ {
		adj := g.Neighbors(v)
		writeU64(uint64(len(adj)))
		for _, u := range adj {
			writeU64(uint64(uint32(u)))
		}
	}
	return h.Sum64()
}

// OptionsDigest folds an ordered list of plan-affecting option values into
// one digest (FNV-64a). Callers must always pass the same fields in the
// same order; see core.CheckpointIdentity.
func OptionsDigest(fields ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range fields {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// BlockID is the stable identity of one unit of work: the recursion level
// it belongs to and its index within that level's deterministic block plan.
// It names the block's journal records and its result segment, so a block
// retried, re-dispatched, or resumed in a later session always lands in the
// same place — the mechanism that makes re-execution idempotent.
type BlockID struct {
	Level int
	Plan  int
}

// BatchObserver receives per-block lifecycle callbacks from an executor as
// a batch runs, so completions are durable the moment they happen rather
// than when the whole batch returns. Implementations must tolerate
// concurrent calls. BlockDone returning an error aborts the batch.
type BatchObserver interface {
	BlockDispatched(id BlockID)
	BlockDone(id BlockID, cliques [][]int32) error
}

// ErrIdentityMismatch reports a checkpoint directory that belongs to a
// different run. It is wrapped with the differing digests.
var ErrIdentityMismatch = errors.New("runlog: checkpoint belongs to a different run")

// Options tunes a Checkpoint.
type Options struct {
	// NoSync disables fsync on journal appends and segment writes. Only
	// for tests: without sync, a crash can lose records the journal
	// claimed durable.
	NoSync bool
	// Metrics, when non-nil, receives checkpoint telemetry: records and
	// bytes appended, replay time, and blocks skipped on resume. Nil
	// disables it.
	Metrics *telemetry.Engine
	// FS overrides the filesystem the checkpoint reads and writes; nil
	// means the real OS filesystem. Tests inject failing filesystems here
	// to prove the degraded write paths without a real full disk.
	FS FS
	// OnDegrade, when non-nil, is called exactly once if a mid-run write
	// failure (ENOSPC, I/O error) permanently disables checkpointing for
	// this session — the run continues without durability. The callback
	// runs with the checkpoint's internal lock held and must not call back
	// into the Checkpoint.
	OnDegrade func(error)
}

// doneInfo is the journal's claim about one completed block.
type doneInfo struct {
	count  int
	digest uint32
}

// Checkpoint is the durable state of one enumeration run: a write-ahead
// journal plus one clique segment per completed block, all inside a single
// directory. It implements BatchObserver, so it can be handed directly to
// a checkpoint-aware executor.
//
// All methods are safe for concurrent use; segment and journal writes are
// serialised internally.
type Checkpoint struct {
	dir       string
	id        Identity
	met       *telemetry.Engine
	fs        FS
	onDegrade func(error)

	mu         sync.Mutex
	j          *journal
	degraded   bool  // checkpointing disabled after a write failure
	degradeErr error // the failure that disabled it
	resumed    bool
	runEnded   bool
	levels     map[int]int  // level → planned block count
	levelEnded map[int]bool // level → every block done
	dispatched map[BlockID]bool
	done       map[BlockID]doneInfo
	skipped    int64 // done blocks served from segments this session
	restored   int64 // dispatched-but-not-done blocks re-enqueued this session
}

// journalName and segmentsDir fix the on-disk layout of a checkpoint
// directory.
const (
	journalName = "journal.mcej"
	segmentsDir = "segments"
)

// JournalPath returns the journal file path inside a checkpoint directory.
func JournalPath(dir string) string { return filepath.Join(dir, journalName) }

// HasJournal reports whether dir contains a run journal (of any state).
func HasJournal(dir string) bool {
	st, err := os.Stat(JournalPath(dir))
	return err == nil && !st.IsDir()
}

// IsCheckpointSegmentDir reports whether dir is the segment directory of a
// run checkpoint — a "segments" directory with the run journal beside it.
// Those segments are resume state, not the run's answer: each block's
// cliques are journaled in its recursion level's local vertex-ID space,
// before the parent level's Lemma 1 filter, and only the resume replay
// (translate + filter on the way back up) turns them into the final clique
// family. Serving-side consumers must refuse to compile them directly.
func IsCheckpointSegmentDir(dir string) bool {
	dir = filepath.Clean(dir)
	return filepath.Base(dir) == segmentsDir && HasJournal(filepath.Dir(dir))
}

// Open attaches to the checkpoint directory at dir, creating it when
// absent. An existing journal is replayed (its torn tail truncated) and its
// identity checked against id — ErrIdentityMismatch (wrapped) refuses a
// resume across a changed graph or changed plan-affecting options. On
// success the checkpoint is ready to journal a run: fresh directories get a
// run-begin record, resumed ones a resume record.
func Open(dir string, id Identity, opts Options) (*Checkpoint, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(filepath.Join(dir, segmentsDir), 0o755); err != nil {
		return nil, fmt.Errorf("runlog: create checkpoint dir: %w", err)
	}
	path := JournalPath(dir)
	start := time.Now()
	recs, validOff, err := replayJournal(fs, path)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{
		dir:        dir,
		id:         id,
		met:        opts.Metrics,
		fs:         fs,
		onDegrade:  opts.OnDegrade,
		levels:     make(map[int]int),
		levelEnded: make(map[int]bool),
		dispatched: make(map[BlockID]bool),
		done:       make(map[BlockID]doneInfo),
	}
	if err := c.restore(recs, id); err != nil {
		return nil, err
	}
	if c.met != nil {
		c.met.CheckpointReplayNs.Add(int64(time.Since(start)))
	}
	j, err := openJournalForAppend(fs, path, validOff, !opts.NoSync, opts.Metrics)
	if err != nil {
		return nil, err
	}
	c.j = j
	first := &rec{kind: recRunBegin, graph: id.Graph, opts: id.Options}
	if c.resumed {
		first.kind = recResume
	}
	if err := j.append(first); err != nil {
		j.close()
		return nil, err
	}
	return c, nil
}

// restore rebuilds the in-memory state machine from replayed records.
func (c *Checkpoint) restore(recs []rec, id Identity) error {
	for i := range recs {
		r := &recs[i]
		switch r.kind {
		case recRunBegin, recResume:
			if r.graph != id.Graph || r.opts != id.Options {
				what := "options"
				if r.graph != id.Graph {
					what = "graph"
				}
				return fmt.Errorf("%w: journaled %s digest %#x, this run has %#x — pass a fresh -checkpoint directory to start over",
					ErrIdentityMismatch, what,
					pick(r.graph != id.Graph, r.graph, r.opts),
					pick(r.graph != id.Graph, id.Graph, id.Options))
			}
			if i > 0 || r.kind == recResume {
				c.resumed = true
			}
		case recLevel:
			c.levels[r.level] = r.blocks
		case recDispatch:
			c.dispatched[BlockID{r.level, r.plan}] = true
		case recDone:
			c.done[BlockID{r.level, r.plan}] = doneInfo{count: r.count, digest: r.digest}
		case recLevelEnd:
			c.levelEnded[r.level] = true
		case recRunEnd:
			c.runEnded = true
		}
	}
	if len(recs) > 0 {
		c.resumed = true
	}
	return nil
}

// pick is a tiny ternary for the mismatch error message.
func pick(cond bool, a, b uint64) uint64 {
	if cond {
		return a
	}
	return b
}

// degrade permanently disables checkpointing for this session after a
// write failure: the run continues, every later observer call becomes a
// no-op, and the journal keeps its durable prefix — the next resume simply
// starts from the last record that made it to disk. Callers hold c.mu.
func (c *Checkpoint) degrade(err error) {
	if c.degraded {
		return
	}
	c.degraded = true
	c.degradeErr = err
	if c.met != nil {
		c.met.CheckpointDegraded.Set(1)
	}
	if c.onDegrade != nil {
		c.onDegrade(err)
	}
}

// Degraded reports whether a write failure disabled checkpointing mid-run.
func (c *Checkpoint) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// DegradeError returns the write failure that disabled checkpointing, or
// nil when the checkpoint is healthy.
func (c *Checkpoint) DegradeError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degradeErr
}

// disabled reports whether mutating observer calls should no-op: after a
// degrade, or after Close (a straggler's late BlockDone may arrive once the
// batch has already returned and the caller released the checkpoint).
// Callers hold c.mu.
func (c *Checkpoint) disabled() bool { return c.degraded || c.j == nil }

// Resumed reports whether the directory held prior run state at Open.
func (c *Checkpoint) Resumed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// Completed reports whether the journal records a finished run.
func (c *Checkpoint) Completed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runEnded
}

// SkippedBlocks reports how many journaled-done blocks this session served
// from segments instead of re-analysing.
func (c *Checkpoint) SkippedBlocks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// ReenqueuedBlocks reports how many journaled-dispatched-but-not-done
// blocks this session found on resume — work that was in flight when the
// previous coordinator died and is re-enqueued.
func (c *Checkpoint) ReenqueuedBlocks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restored
}

// BeginLevel journals one recursion level's block plan. A resumed journal
// that planned a different block count for the same level is refused — the
// plan is deterministic in (graph, options), so a mismatch means the
// checkpoint does not belong to this run despite its identity record.
func (c *Checkpoint) BeginLevel(level, blocks int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.levels[level]; ok {
		if prev != blocks {
			return fmt.Errorf("%w: level %d planned %d blocks, journal recorded %d",
				ErrIdentityMismatch, level, blocks, prev)
		}
		return nil
	}
	c.levels[level] = blocks
	if c.disabled() {
		return nil
	}
	if err := c.j.append(&rec{kind: recLevel, level: level, blocks: blocks}); err != nil {
		c.degrade(err)
	}
	return nil
}

// DoneCliques returns the journaled result of a completed block, loaded
// and verified from its segment. ok is false when the block is not done,
// or when its segment is missing, truncated, or disagrees with the
// journal's count/digest — in that case the done claim is dropped so the
// caller re-executes the block (the segment overwrite makes that safe).
func (c *Checkpoint) DoneCliques(id BlockID) (cliques [][]int32, ok bool) {
	c.mu.Lock()
	info, isDone := c.done[id]
	if !isDone {
		if c.dispatched[id] {
			c.restored++
		}
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()

	cliques, err := c.loadSegment(id, info)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// Self-heal: the journal says done but the bytes disagree.
		// Dropping the claim re-executes the block, whose segment write
		// overwrites the bad file.
		delete(c.done, id)
		return nil, false
	}
	c.skipped++
	if c.met != nil {
		c.met.CheckpointBlocksSkipped.Inc()
	}
	return cliques, true
}

// segmentPath names a block's result segment by its stable identity.
func (c *Checkpoint) segmentPath(id BlockID) string {
	return filepath.Join(c.dir, segmentsDir, fmt.Sprintf("L%03d-B%06d.cliq", id.Level, id.Plan))
}

// loadSegment reads one segment and verifies it against the journal claim.
func (c *Checkpoint) loadSegment(id BlockID, info doneInfo) ([][]int32, error) {
	f, err := c.fs.Open(c.segmentPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := cliqstore.NewReader(f)
	if err != nil {
		return nil, err
	}
	var out [][]int32
	if err := r.ForEach(func(cl []int32) error {
		cp := make([]int32, len(cl))
		copy(cp, cl)
		out = append(out, cp)
		return nil
	}); err != nil {
		return nil, err
	}
	if r.Count() != int64(info.count) || r.Digest() != info.digest {
		return nil, fmt.Errorf("runlog: segment %s holds %d cliques digest %#x, journal claims %d/%#x",
			c.segmentPath(id), r.Count(), r.Digest(), info.count, info.digest)
	}
	return out, nil
}

// BlockDispatched journals that a block was handed to an executor. It
// implements BatchObserver; append failures surface on the subsequent
// BlockDone (the journal stays failed), so dispatch stays fire-and-forget
// for executors.
func (c *Checkpoint) BlockDispatched(id BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, isDone := c.done[id]; isDone || c.dispatched[id] {
		return
	}
	c.dispatched[id] = true
	if c.disabled() {
		return
	}
	if err := c.j.append(&rec{kind: recDispatch, level: id.Level, plan: id.Plan}); err != nil {
		c.degrade(err)
	}
}

// BlockDone makes one block's result durable: the cliques are written to
// the block's segment (write-temp, fsync, rename — so a crash never leaves
// a half segment under the live name), then the done record is journaled.
// A block re-executed after a crash simply overwrites its segment, which
// is what makes retries and resumes idempotent. It implements
// BatchObserver.
//
// A write failure (ENOSPC, I/O error) never fails the batch: the
// checkpoint degrades — checkpointing is disabled for the rest of the
// session and the run continues on its in-memory results. The journal's
// durable prefix stays intact, so a later resume replays to the last block
// that actually hit the disk.
func (c *Checkpoint) BlockDone(id BlockID, cliques [][]int32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, already := c.done[id]; already {
		return nil
	}
	if c.disabled() {
		return nil
	}
	digest, count, err := c.writeSegment(id, cliques)
	if err != nil {
		c.degrade(err)
		return nil
	}
	if err := c.j.append(&rec{kind: recDone, level: id.Level, plan: id.Plan, count: count, digest: digest}); err != nil {
		c.degrade(err)
		return nil
	}
	c.done[id] = doneInfo{count: count, digest: digest}
	return nil
}

// writeSegment persists one block's cliques atomically. Callers hold c.mu.
func (c *Checkpoint) writeSegment(id BlockID, cliques [][]int32) (digest uint32, count int, err error) {
	final := c.segmentPath(id)
	tmp := final + ".tmp"
	f, err := c.fs.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("runlog: segment: %w", err)
	}
	w, err := cliqstore.NewWriter(f)
	if err == nil {
		for _, cl := range cliques {
			if err = w.Write(cl); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Finish()
	}
	if err == nil && c.j.sync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		c.fs.Remove(tmp)
		return 0, 0, fmt.Errorf("runlog: segment %s: %w", final, err)
	}
	if err := c.fs.Rename(tmp, final); err != nil {
		c.fs.Remove(tmp)
		return 0, 0, fmt.Errorf("runlog: segment: %w", err)
	}
	return w.Digest(), int(w.Count()), nil
}

// EndLevel journals that every block of a level is done.
func (c *Checkpoint) EndLevel(level int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.levelEnded[level] {
		return nil
	}
	c.levelEnded[level] = true
	if c.disabled() {
		return nil
	}
	if err := c.j.append(&rec{kind: recLevelEnd, level: level}); err != nil {
		c.degrade(err)
	}
	return nil
}

// FinishRun journals run completion. A journal carrying this record resumes
// straight from segments: every block loads as done.
func (c *Checkpoint) FinishRun() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runEnded {
		return nil
	}
	if c.disabled() {
		return nil
	}
	c.runEnded = true
	if err := c.j.append(&rec{kind: recRunEnd}); err != nil {
		c.degrade(err)
	}
	return nil
}

// Close releases the journal file. The checkpoint directory remains valid
// for a later Open.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.j == nil {
		return nil
	}
	err := c.j.close()
	c.j = nil
	if c.degraded {
		// The failure was already reported through OnDegrade; a degraded
		// close is clean by definition.
		return nil
	}
	return err
}
