package cliqdb

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzIndexOpen hardens the open path against arbitrary bytes: whatever the
// mutator does to headers, frames, offset tables or payloads, openBytes
// must either reject the image or produce a DB whose every lookup is
// consistent — never panic, never serve wrong data. The seed corpus
// includes well-formed indexes so the mutator starts from deep inside the
// format rather than bouncing off the magic check.
func FuzzIndexOpen(f *testing.F) {
	seed := func(cliques [][]int32) []byte {
		image, _, err := encode(cliques)
		if err != nil {
			f.Fatal(err)
		}
		return image
	}
	f.Add(seed(nil))
	f.Add(seed([][]int32{{0, 1, 2}, {1, 2, 3}, {4, 9}}))
	f.Add(seed([][]int32{{0, 5, 100}, {2, 3}, {3, 4, 5, 6}, {0, 1}}))
	f.Add([]byte{})
	f.Add([]byte("MCEDB1\r\nnot really an index MCEDBEND"))

	// Regression seeds for the uint64 wrap in the open-path bounds checks:
	// offsets near 2^64 made the old addition-form checks (off+overhead >
	// len) wrap around and pass, so openBytes panicked slicing instead of
	// returning ErrCorrupt. The second image re-CRCs the footer after
	// rewriting the CLIQ entry's offset so it reaches the section bounds
	// check rather than dying at the footer CRC.
	hugeFoot := append([]byte(nil), headMagic[:]...)
	hugeFoot = binary.LittleEndian.AppendUint64(hugeFoot, ^uint64(7)) // footOff = 2^64-8
	hugeFoot = append(hugeFoot, tailMagic[:]...)
	f.Add(hugeFoot)
	rewriteSectionOff := func(image []byte, entry int, off uint64) []byte {
		img := append([]byte(nil), image...)
		footOff := binary.LittleEndian.Uint64(img[len(img)-trailerLen:])
		payLen := binary.LittleEndian.Uint64(img[footOff+4 : footOff+12])
		pay := img[footOff+12 : footOff+12+payLen]
		binary.LittleEndian.PutUint64(pay[4+entry*24+4:], off)
		binary.LittleEndian.PutUint32(img[footOff+12+payLen:], crc32.ChecksumIEEE(pay))
		return img
	}
	f.Add(rewriteSectionOff(seed([][]int32{{0, 1, 2}, {1, 2, 3}, {4, 9}}), 1, ^uint64(4))) // CLIQ off = 2^64-5

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := openBytes(data)
		if err != nil {
			return // rejected: exactly what corruption should get
		}
		// The image verified; every query the daemon can issue must now be
		// total and self-consistent.
		cliques := db.Cliques()
		if len(cliques) != db.NumCliques() {
			t.Fatalf("Cliques() yields %d, NumCliques says %d", len(cliques), db.NumCliques())
		}
		for id, c := range cliques {
			if db.CliqueSize(uint32(id)) != len(c) {
				t.Fatalf("clique %d: size index says %d, decode says %d", id, db.CliqueSize(uint32(id)), len(c))
			}
			for _, v := range c {
				if v < 0 || v >= db.NumVertices() {
					t.Fatalf("clique %d member %d outside vertex space", id, v)
				}
			}
		}
		for v := int32(0); v < db.NumVertices(); v++ {
			ids := db.AppendCliquesOf(nil, v)
			if len(ids) != db.CliqueCount(v) {
				t.Fatalf("vertex %d: posting has %d ids, count says %d", v, len(ids), db.CliqueCount(v))
			}
			for _, id := range ids {
				found := false
				for _, m := range cliques[id] {
					if m == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("vertex %d posting names clique %d which does not contain it", v, id)
				}
			}
		}
		top := db.AppendTopK(nil, db.NumCliques())
		for i := 1; i < len(top); i++ {
			a, b := db.CliqueSize(top[i-1]), db.CliqueSize(top[i])
			if a < b {
				t.Fatalf("top-k not size-ordered at %d", i)
			}
		}
		// A verified image must round-trip: rebuilding from its own cliques
		// reproduces the identical bytes (determinism underwrites the
		// self-healing byte-identity guarantee).
		again, _, err := encode(cliques)
		if err != nil {
			t.Fatalf("re-encode of verified DB failed: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("verified image is not the canonical encoding of its own content")
		}
	})
}
