package cliqdb

// Crash-safety chaos harness for the index compiler: a compile is SIGKILLed
// at randomized points and the live index must afterwards be either absent
// or byte-identical to the control — never torn — and OpenOrRebuild must
// self-heal to exactly the control bytes. The test binary re-execs itself
// as the compiler (TestMain intercepts MCE_CLIQDB_CHAOS_CHILD) so the kill
// is a real process death: no deferred cleanup, no flushed buffers.
//
// Gated behind MCE_CHAOS=1 (`make chaos`), like the coordinator kill-resume
// harness at the repo root; tier-1 keeps the in-process corruption tests in
// cliqdb_test.go instead.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"mce/internal/cliqstore"
)

func TestMain(m *testing.M) {
	if os.Getenv("MCE_CLIQDB_CHAOS_CHILD") == "1" {
		os.Exit(chaosCompileChild())
	}
	os.Exit(m.Run())
}

// chaosCompileChild is the compiler the parent kills: one CompileSegments
// with the chaos throttle installed, so the parent's randomized kill delay
// reliably lands mid-encode or mid-write.
func chaosCompileChild() int {
	segDir, path := os.Getenv("MCE_CLIQDB_SEGDIR"), os.Getenv("MCE_CLIQDB_OUT")
	if segDir == "" || path == "" {
		fmt.Fprintln(os.Stderr, "chaos compile child: MCE_CLIQDB_SEGDIR / MCE_CLIQDB_OUT not set")
		return 1
	}
	compileThrottle = func() { time.Sleep(20 * time.Millisecond) }
	if _, err := CompileSegments(segDir, path); err != nil {
		fmt.Fprintln(os.Stderr, "chaos compile child:", err)
		return 1
	}
	return 0
}

// chaosCliqueFamily is the synthetic workload: enough cliques that the
// child's throttled compile passes several kill windows, with overlapping
// members so the postings sections carry real weight.
func chaosCliqueFamily() [][]int32 {
	cliques := make([][]int32, 0, 2400)
	for i := 0; i < 2400; i++ {
		a := int32(i % 800)
		cliques = append(cliques, []int32{a, a + 1 + int32(i%7), a + 10 + int32(i%13), a + 30})
	}
	return cliques
}

func writeChaosSegments(t *testing.T, segDir string) {
	t.Helper()
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cliques := chaosCliqueFamily()
	per := (len(cliques) + 2) / 3
	for s := 0; s < 3; s++ {
		lo, hi := s*per, (s+1)*per
		if hi > len(cliques) {
			hi = len(cliques)
		}
		f, err := os.Create(filepath.Join(segDir, fmt.Sprintf("L000-B%06d.cliq", s)))
		if err != nil {
			t.Fatal(err)
		}
		w, err := cliqstore.NewWriter(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cliques[lo:hi] {
			if err := w.Write(c); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosKillCompileSelfHeals SIGKILLs index compiles at randomized
// points and asserts the two crash-safety invariants: (1) atomicity — after
// every kill the live index is either absent or byte-identical to the
// control, never torn; (2) self-healing — OpenOrRebuild over the post-kill
// state produces an index byte-identical to the control (the compile is
// deterministic, so the healed index IS the lost one).
func TestChaosKillCompileSelfHeals(t *testing.T) {
	if os.Getenv("MCE_CHAOS") == "" {
		t.Skip("kill-based chaos harness; run via `make chaos` (MCE_CHAOS=1)")
	}
	dir := t.TempDir()
	segDir := filepath.Join(dir, "segments")
	writeChaosSegments(t, segDir)

	controlPath := filepath.Join(dir, "control.cliqdb")
	if _, err := CompileSegments(segDir, controlPath); err != nil {
		t.Fatal(err)
	}
	control, err := os.ReadFile(controlPath)
	if err != nil {
		t.Fatal(err)
	}

	seed := int64(1)
	if s := os.Getenv("MCE_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	rnd := rand.New(rand.NewSource(seed))

	livePath := filepath.Join(dir, "live.cliqdb")
	kills := 0
	for attempt := 0; attempt < 10; attempt++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"MCE_CLIQDB_CHAOS_CHILD=1",
			"MCE_CLIQDB_SEGDIR="+segDir,
			"MCE_CLIQDB_OUT="+livePath,
		)
		var errBuf bytes.Buffer
		cmd.Stderr = &errBuf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		// The throttled compile takes ~100ms+; a uniform delay across that
		// window lands kills in segment reading, encode and the chunked
		// temp-file write alike.
		delay := time.Duration(5+rnd.Intn(150)) * time.Millisecond
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("chaos compile child failed on its own: %v\n%s", err, errBuf.String())
			}
		case <-time.After(delay):
			_ = cmd.Process.Kill()
			if err := <-done; err != nil {
				kills++
			}
		}

		// Invariant 1: atomicity. The live index never exists in a torn
		// state, killed or not.
		if data, err := os.ReadFile(livePath); err == nil {
			if !bytes.Equal(data, control) {
				t.Fatalf("attempt %d (delay %v): live index exists but differs from control (%d vs %d bytes)",
					attempt, delay, len(data), len(control))
			}
		} else if !os.IsNotExist(err) {
			t.Fatal(err)
		}

		// Invariant 2: self-healing. Whatever state the kill left, open
		// recovers a verified index with the control's exact bytes.
		db, _, err := OpenOrRebuild(livePath, segDir)
		if err != nil {
			t.Fatalf("attempt %d: OpenOrRebuild after kill: %v", attempt, err)
		}
		healed, err := os.ReadFile(livePath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(healed, control) {
			t.Fatalf("attempt %d: healed index differs from control (%d vs %d bytes)", attempt, len(healed), len(control))
		}
		if db.NumCliques() == 0 {
			t.Fatalf("attempt %d: healed index is empty", attempt)
		}

		// Remove the healed index so the next attempt compiles from
		// scratch; leftover *.tmp* files from killed writes stay behind on
		// purpose — rebuilds must not trip over them.
		if err := os.Remove(livePath); err != nil {
			t.Fatal(err)
		}
	}
	if kills == 0 {
		t.Fatal("every compile finished before a kill landed; the chaos run exercised nothing")
	}
	t.Logf("killed %d compiles (seed %d)", kills, seed)
}
