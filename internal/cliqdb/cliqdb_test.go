package cliqdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mce/internal/cliqstore"
	"mce/internal/gen"
	"mce/internal/mcealg"
)

// testCliques is a small hand-written family with overlap, duplicates
// across "segments", a shared pair, and size ties.
func testCliques() [][]int32 {
	return [][]int32{
		{0, 1, 2},
		{1, 2, 3, 4},
		{2, 5},
		{0, 6},
		{3, 4, 7},
		{5, 6, 7},
	}
}

func buildTestDB(t *testing.T, cliques [][]int32) (*DB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cliques.mcdb")
	if _, err := Build(cliques, path); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return db, path
}

// realCliques enumerates a deterministic synthetic social network with the
// repo's own algorithm, giving the index a realistic workload.
func realCliques(t testing.TB) [][]int32 {
	t.Helper()
	g := gen.HolmeKim(300, 5, 0.6, 7)
	cliques, err := mcealg.Collect(g, mcealg.Combo{Alg: mcealg.BKPivot, Struct: mcealg.BitSets})
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) == 0 {
		t.Fatal("enumeration yielded no cliques")
	}
	return cliques
}

func TestRoundTripQueries(t *testing.T) {
	cliques := testCliques()
	db, _ := buildTestDB(t, cliques)

	if db.NumCliques() != len(cliques) {
		t.Fatalf("NumCliques = %d, want %d", db.NumCliques(), len(cliques))
	}
	if db.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", db.NumVertices())
	}

	// Every clique must be retrievable, and the set must match the input.
	got := db.Cliques()
	want := append([][]int32{}, cliques...)
	sort.Slice(want, func(i, j int) bool { return compareCliques(want[i], want[j]) < 0 })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Cliques() = %v, want %v", got, want)
	}

	// cliques-of: brute-force cross-check for every vertex.
	for v := int32(0); v < db.NumVertices(); v++ {
		ids := db.AppendCliquesOf(nil, v)
		if db.CliqueCount(v) != len(ids) {
			t.Fatalf("CliqueCount(%d) = %d, posting has %d", v, db.CliqueCount(v), len(ids))
		}
		var wantCliques [][]int32
		for _, c := range want {
			for _, m := range c {
				if m == v {
					wantCliques = append(wantCliques, c)
				}
			}
		}
		if len(ids) != len(wantCliques) {
			t.Fatalf("CliquesOf(%d): %d cliques, want %d", v, len(ids), len(wantCliques))
		}
		for i, id := range ids {
			c := db.AppendClique(nil, id)
			if !reflect.DeepEqual(c, wantCliques[i]) {
				t.Fatalf("CliquesOf(%d)[%d] = %v, want %v", v, i, c, wantCliques[i])
			}
		}
	}

	// common-cliques: brute force over all pairs.
	for u := int32(0); u < db.NumVertices(); u++ {
		for v := int32(0); v < db.NumVertices(); v++ {
			ids := db.AppendCommonCliques(nil, u, v)
			wantN := 0
			for _, c := range want {
				hasU, hasV := false, false
				for _, m := range c {
					hasU = hasU || m == u
					hasV = hasV || m == v
				}
				if hasU && hasV {
					wantN++
				}
			}
			if len(ids) != wantN {
				t.Fatalf("CommonCliques(%d,%d): %d, want %d", u, v, len(ids), wantN)
			}
		}
	}

	// Out-of-range vertices: empty, not panic.
	if got := db.AppendCliquesOf(nil, -1); len(got) != 0 {
		t.Fatalf("CliquesOf(-1) = %v", got)
	}
	if got := db.AppendCliquesOf(nil, 99); len(got) != 0 {
		t.Fatalf("CliquesOf(99) = %v", got)
	}
	if got := db.AppendCommonCliques(nil, 0, 99); len(got) != 0 {
		t.Fatalf("CommonCliques(0,99) = %v", got)
	}
}

func TestTopKAndMinSize(t *testing.T) {
	db, _ := buildTestDB(t, testCliques())

	top := db.AppendTopK(nil, 2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d ids", len(top))
	}
	if db.CliqueSize(top[0]) != 4 || db.CliqueSize(top[1]) != 3 {
		t.Fatalf("TopK sizes = %d, %d; want 4, 3", db.CliqueSize(top[0]), db.CliqueSize(top[1]))
	}
	// Ties broken by ascending ID.
	all := db.AppendTopK(nil, db.NumCliques()+10)
	if len(all) != db.NumCliques() {
		t.Fatalf("TopK(all) returned %d ids, want %d", len(all), db.NumCliques())
	}
	for i := 1; i < len(all); i++ {
		sa, sb := db.CliqueSize(all[i-1]), db.CliqueSize(all[i])
		if sa < sb || (sa == sb && all[i-1] >= all[i]) {
			t.Fatalf("TopK order violated at %d: id %d (size %d) before id %d (size %d)",
				i, all[i-1], sa, all[i], sb)
		}
	}

	if n := db.MinSizeCount(3); n != 4 {
		t.Fatalf("MinSizeCount(3) = %d, want 4", n)
	}
	if n := db.MinSizeCount(5); n != 0 {
		t.Fatalf("MinSizeCount(5) = %d, want 0", n)
	}
	ids := db.AppendMinSize(nil, 3)
	if len(ids) != 4 {
		t.Fatalf("MinSize(3) = %d ids, want 4", len(ids))
	}
	for _, id := range ids {
		if db.CliqueSize(id) < 3 {
			t.Fatalf("MinSize(3) returned clique of size %d", db.CliqueSize(id))
		}
	}
}

func TestBuildDeterministicAndOrderIndependent(t *testing.T) {
	cliques := realCliques(t)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.mcdb")
	p2 := filepath.Join(dir, "b.mcdb")
	if _, err := Build(cliques, p1); err != nil {
		t.Fatal(err)
	}
	// Same family in reversed input order, plus a duplicated clique: the
	// canonical sort + dedup must land on identical bytes.
	rev := make([][]int32, 0, len(cliques)+1)
	for i := len(cliques) - 1; i >= 0; i-- {
		rev = append(rev, cliques[i])
	}
	rev = append(rev, cliques[0])
	if _, err := Build(rev, p2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("index bytes differ across input orderings")
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	cliques := [][]int32{{5, 6}, {0, 1}, {2, 3}}
	if _, err := Build(cliques, filepath.Join(t.TempDir(), "x.mcdb")); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cliques, [][]int32{{5, 6}, {0, 1}, {2, 3}}) {
		t.Fatalf("Build reordered its input: %v", cliques)
	}
}

func TestCompileSegmentsMatchesBuild(t *testing.T) {
	cliques := realCliques(t)
	dir := t.TempDir()
	segDir := filepath.Join(dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Split the family over three segments, as a checkpointed run would.
	third := len(cliques) / 3
	writeSegment(t, filepath.Join(segDir, "L000-B000000.cliq"), cliques[:third])
	writeSegment(t, filepath.Join(segDir, "L000-B000001.cliq"), cliques[third:2*third])
	writeSegment(t, filepath.Join(segDir, "L001-B000000.cliq"), cliques[2*third:])

	fromSegs := filepath.Join(dir, "segs.mcdb")
	fromMem := filepath.Join(dir, "mem.mcdb")
	st, err := CompileSegments(segDir, fromSegs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(cliques, fromMem); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(fromSegs)
	b2, _ := os.ReadFile(fromMem)
	if !bytes.Equal(b1, b2) {
		t.Fatal("segment compile and in-memory build disagree")
	}
	if st.Cliques == 0 || st.Bytes != int64(len(b1)) {
		t.Fatalf("BuildStats = %+v, file is %d bytes", st, len(b1))
	}
	db, err := Open(fromSegs)
	if err != nil {
		t.Fatal(err)
	}
	if db.Digest() != cliqstore.Digest(db.Cliques()) {
		t.Fatal("header digest does not match content")
	}
}

// writeSegment seals cliques into one cliqstore segment file. The members
// of each clique must already be ascending (mcealg emits them so).
func writeSegment(t testing.TB, path string, cliques [][]int32) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := cliqstore.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDetectsCorruption(t *testing.T) {
	cliques := realCliques(t)
	path := filepath.Join(t.TempDir(), "cliques.mcdb")
	if _, err := Build(cliques, path); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every single-byte flip anywhere in the file must be detected.
	stride := len(pristine)/97 + 1
	for off := 0; off < len(pristine); off += stride {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 0x41
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		} else if !Rebuildable(err) {
			t.Fatalf("bit flip at offset %d: error not rebuildable: %v", off, err)
		}
	}

	// Every truncation point must be detected.
	for _, cut := range []int{0, 1, 7, 8, len(pristine) / 3, len(pristine) - 17, len(pristine) - 1} {
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		} else if !Rebuildable(err) {
			t.Fatalf("truncation to %d: error not rebuildable: %v", cut, err)
		}
	}

	// And the pristine bytes still open.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatalf("pristine index failed to open: %v", err)
	}
}

// TestCompileSegmentsRefusesCheckpointDir pins the serving-segment
// contract: a run checkpoint's segment directory holds level-local,
// pre-Lemma-1-filter resume state, so compiling it would build an index
// with non-maximal cliques under wrong vertex labels. It must be refused,
// not compiled.
func TestCompileSegmentsRefusesCheckpointDir(t *testing.T) {
	ckpt := t.TempDir()
	segDir := filepath.Join(ckpt, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckpt, "journal.mcej"), []byte("j"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, filepath.Join(segDir, "L000-B000000.cliq"), testCliques())
	out := filepath.Join(t.TempDir(), "out.mcdb")
	if _, err := CompileSegments(segDir, out); err == nil {
		t.Fatal("CompileSegments accepted a run checkpoint's segment directory")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("refusal does not explain the checkpoint contract: %v", err)
	}
	// The same segments without a journal beside them are an ordinary
	// serving directory and compile fine.
	if err := os.Remove(filepath.Join(ckpt, "journal.mcej")); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileSegments(segDir, out); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsWrappingOffsets pins the subtraction-form bounds checks:
// offsets near 2^64 wrapped the old addition-form checks so openBytes
// panicked slicing instead of returning a rebuildable error.
func TestOpenRejectsWrappingOffsets(t *testing.T) {
	// Footer offset 2^64-8 inside a minimal 24-byte image.
	hugeFoot := append([]byte(nil), headMagic[:]...)
	hugeFoot = binary.LittleEndian.AppendUint64(hugeFoot, ^uint64(7))
	hugeFoot = append(hugeFoot, tailMagic[:]...)

	// A valid image whose CLIQ footer entry gets offset 2^64-5, with the
	// footer CRC recomputed so parsing reaches the section bounds check.
	image, _, err := encode(testCliques())
	if err != nil {
		t.Fatal(err)
	}
	footOff := binary.LittleEndian.Uint64(image[len(image)-trailerLen:])
	payLen := binary.LittleEndian.Uint64(image[footOff+4 : footOff+12])
	pay := image[footOff+12 : footOff+12+payLen]
	binary.LittleEndian.PutUint64(pay[4+1*24+4:], ^uint64(4))
	binary.LittleEndian.PutUint32(image[footOff+12+payLen:], crc32.ChecksumIEEE(pay))

	for name, img := range map[string][]byte{"footer": hugeFoot, "section": image} {
		if _, err := openBytes(img); err == nil {
			t.Errorf("%s offset near 2^64 went undetected", name)
		} else if !Rebuildable(err) {
			t.Errorf("%s offset near 2^64: error not rebuildable: %v", name, err)
		}
	}
}

func TestOpenOrRebuildSelfHeals(t *testing.T) {
	cliques := realCliques(t)
	dir := t.TempDir()
	segDir := filepath.Join(dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	half := len(cliques) / 2
	writeSegment(t, filepath.Join(segDir, "L000-B000000.cliq"), cliques[:half])
	writeSegment(t, filepath.Join(segDir, "L000-B000001.cliq"), cliques[half:])
	path := filepath.Join(dir, "cliques.mcdb")

	// Missing index: rebuilt from segments.
	db, rebuilt, err := OpenOrRebuild(path, segDir)
	if err != nil || !rebuilt {
		t.Fatalf("missing index: rebuilt=%v err=%v", rebuilt, err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantCliques := db.NumCliques()

	// Healthy index: no rebuild.
	if _, rebuilt, err = OpenOrRebuild(path, segDir); err != nil || rebuilt {
		t.Fatalf("healthy index: rebuilt=%v err=%v", rebuilt, err)
	}

	// Corrupt index: detected, healed, byte-identical.
	mutated := append([]byte(nil), pristine...)
	mutated[len(mutated)/2] ^= 0xFF
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	db, rebuilt, err = OpenOrRebuild(path, segDir)
	if err != nil || !rebuilt {
		t.Fatalf("corrupt index: rebuilt=%v err=%v", rebuilt, err)
	}
	healed, _ := os.ReadFile(path)
	if !bytes.Equal(healed, pristine) {
		t.Fatal("self-healed index is not byte-identical to the original")
	}
	if db.NumCliques() != wantCliques {
		t.Fatalf("healed DB holds %d cliques, want %d", db.NumCliques(), wantCliques)
	}

	// No segment directory: the corruption is surfaced, not healed.
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err = OpenOrRebuild(path, ""); err == nil {
		t.Fatal("corrupt index with no segments must fail")
	}

	// A truncated segment poisons the rebuild — the authoritative source
	// is bad and must not be papered over.
	seg := filepath.Join(segDir, "L000-B000000.cliq")
	segBytes, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, segBytes[:len(segBytes)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err = OpenOrRebuild(path, segDir); !errors.Is(err, cliqstore.ErrTruncated) {
		t.Fatalf("rebuild from truncated segment: err = %v, want cliqstore.ErrTruncated", err)
	}
}

func TestEmptyIndex(t *testing.T) {
	db, _ := buildTestDB(t, nil)
	if db.NumCliques() != 0 || db.NumVertices() != 0 {
		t.Fatalf("empty index: %d cliques, %d vertices", db.NumCliques(), db.NumVertices())
	}
	if got := db.AppendCliquesOf(nil, 0); len(got) != 0 {
		t.Fatalf("CliquesOf on empty index = %v", got)
	}
	if got := db.AppendTopK(nil, 5); len(got) != 0 {
		t.Fatalf("TopK on empty index = %v", got)
	}
}

func TestBuildRejectsMalformedCliques(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range [][][]int32{
		{{}},
		{{3, 2}},
		{{1, 1}},
		{{-1, 2}},
	} {
		if _, err := Build(bad, filepath.Join(dir, "bad.mcdb")); err == nil {
			t.Fatalf("Build(%v) succeeded", bad)
		}
	}
}
