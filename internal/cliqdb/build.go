package cliqdb

// The offline compiler: cliqstore segments (or an in-memory clique family)
// in, one verified index file out. The compile is deterministic — cliques
// are sorted into canonical order and duplicates dropped, so the same
// segment set always produces byte-identical output — and atomic: the
// index is assembled in memory, written to a temp file in the destination
// directory, fsynced, then renamed over the live name. A crash at any
// point leaves either the previous index or the new one, never a torn
// file; the SIGKILL chaos suite (chaos_compile_test.go) kills compiles at
// randomized points to hold the compiler to that.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"mce/internal/cliqstore"
	"mce/internal/runlog"
)

// compileThrottle, when non-nil, is called at encode and write batch
// boundaries. It exists for the chaos suite: the re-execed child installs a
// sleep here so the parent's SIGKILL reliably lands mid-compile. Production
// code never sets it.
var compileThrottle func()

// throttleEvery is how many cliques (encode) or bytes (write) pass between
// compileThrottle calls.
const (
	throttleCliques = 512
	writeChunk      = 64 << 10
)

// BuildStats describes one compiled index.
type BuildStats struct {
	// Cliques is the number of cliques in the index after deduplication.
	Cliques int
	// Vertices is the vertex ID space (max member + 1).
	Vertices int32
	// Bytes is the size of the index file.
	Bytes int64
	// Digest is the content digest sealed into the header.
	Digest uint32
}

// CompileSegments compiles every cliqstore segment under segDir into an
// index at path. Each segment must verify against its own trailer; a
// truncated or corrupt segment fails the compile — the segments are the
// authoritative source and a bad one must be re-derived by re-running the
// enumeration, not papered over.
//
// The segments must hold the run's final clique family in the graph's own
// vertex IDs — the directory mcefind -index-out writes beside the index.
// A run checkpoint's segment directory is NOT that: its segments are
// resume state (level-local IDs, pre-Lemma-1-filter), and compiling them
// would serve wrong cliques under wrong labels, so it is refused.
func CompileSegments(segDir, path string) (*BuildStats, error) {
	if err := CheckServingSegments(segDir); err != nil {
		return nil, err
	}
	var cliques [][]int32
	if _, err := cliqstore.WalkDir(segDir, func(c []int32) error {
		cp := make([]int32, len(c))
		copy(cp, c)
		cliques = append(cliques, cp)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("cliqdb: compile: %w", err)
	}
	return Build(cliques, path)
}

// CheckServingSegments rejects segment directories that cannot back a
// serving index — today, a run checkpoint's segment directory (see
// CompileSegments). mced runs this at startup so a misconfigured -segments
// fails the daemon immediately instead of at the first self-heal.
func CheckServingSegments(segDir string) error {
	if runlog.IsCheckpointSegmentDir(segDir) {
		return fmt.Errorf("cliqdb: %s is a run checkpoint's segment directory, which holds per-level resume state rather than the final clique family; point at the <index>.segments directory mcefind -index-out writes", segDir)
	}
	return nil
}

// Build compiles an in-memory clique family into an index at path. The
// input is not mutated: cliques are copied into canonical order
// (lexicographic over ascending members) with exact duplicates removed.
// Every clique must have strictly ascending, non-negative members.
func Build(cliques [][]int32, path string) (*BuildStats, error) {
	image, st, err := encode(cliques)
	if err != nil {
		return nil, err
	}
	if err := writeAtomic(path, image); err != nil {
		return nil, err
	}
	st.Bytes = int64(len(image))
	return st, nil
}

// encode assembles the full index image in memory.
func encode(cliques [][]int32) ([]byte, *BuildStats, error) {
	ordered := make([][]int32, len(cliques))
	copy(ordered, cliques)
	sort.Slice(ordered, func(i, j int) bool { return compareCliques(ordered[i], ordered[j]) < 0 })

	var nVerts int32
	kept := make([][]int32, 0, len(ordered))
	for _, c := range ordered {
		if len(c) == 0 {
			return nil, nil, fmt.Errorf("cliqdb: empty clique")
		}
		prev := int32(-1)
		for _, v := range c {
			if v < 0 || v <= prev {
				return nil, nil, fmt.Errorf("cliqdb: clique %v not strictly ascending and non-negative", c)
			}
			prev = v
		}
		if c[len(c)-1] >= nVerts {
			nVerts = c[len(c)-1] + 1
		}
		if len(kept) > 0 && compareCliques(kept[len(kept)-1], c) == 0 {
			continue // exact duplicate (sorted input makes duplicates adjacent)
		}
		kept = append(kept, c)
	}
	n := len(kept)
	if uint64(n) > 1<<31 {
		return nil, nil, fmt.Errorf("cliqdb: %d cliques exceeds the format limit of 2^31", n)
	}

	// CLIQ + COFF + per-vertex counts + content digest, one pass.
	var (
		cliq    []byte
		coff    = make([]byte, 0, (n+1)*4)
		counts  = make([]uint32, nVerts)
		crc     = crc32.NewIEEE()
		hbuf    [4]byte
		varbuf  [binary.MaxVarintLen64]byte
		sizeIdx = make([]uint32, n)
	)
	putU32 := func(dst []byte, v uint32) []byte {
		binary.LittleEndian.PutUint32(hbuf[:], v)
		return append(dst, hbuf[:4]...)
	}
	uv := func(dst []byte, v uint64) []byte {
		k := binary.PutUvarint(varbuf[:], v)
		return append(dst, varbuf[:k]...)
	}
	for id, c := range kept {
		coff = putU32(coff, uint32(len(cliq)))
		cliq = uv(cliq, uint64(len(c)))
		prev := int32(0)
		binary.LittleEndian.PutUint32(hbuf[:], uint32(len(c)))
		crc.Write(hbuf[:])
		for i, v := range c {
			delta := uint64(v - prev)
			if i == 0 {
				delta = uint64(v)
			}
			cliq = uv(cliq, delta)
			prev = v
			counts[v]++
			binary.LittleEndian.PutUint32(hbuf[:], uint32(v))
			crc.Write(hbuf[:])
		}
		sizeIdx[id] = uint32(id)
		if compileThrottle != nil && id%throttleCliques == throttleCliques-1 {
			compileThrottle()
		}
	}
	// COFF/VOFF offsets are uint32; a section past 4 GiB would wrap them
	// silently and emit an index that can never verify, bricking
	// OpenOrRebuild's self-healing. Fail the compile loudly instead.
	if len(cliq) > math.MaxUint32 {
		return nil, nil, fmt.Errorf("cliqdb: CLIQ section is %d bytes, past the 4 GiB uint32 offset limit", len(cliq))
	}
	coff = putU32(coff, uint32(len(cliq)))
	digest := crc.Sum32()

	// VPST + VOFF: walk cliques in ID order, appending each ID to the
	// posting of every member — each posting comes out ascending. Encoded
	// with a count prefix so lookups can preallocate.
	type postingState struct {
		buf  []byte
		last uint32
		n    uint32
	}
	posts := make([]postingState, nVerts)
	for id, c := range kept {
		for _, v := range c {
			p := &posts[v]
			delta := uint32(id) - p.last
			if p.n == 0 {
				delta = uint32(id)
			}
			p.buf = uv(p.buf, uint64(delta))
			p.last = uint32(id)
			p.n++
		}
	}
	var vpst []byte
	voff := make([]byte, 0, (int(nVerts)+1)*4)
	for v := int32(0); v < nVerts; v++ {
		voff = putU32(voff, uint32(len(vpst)))
		vpst = uv(vpst, uint64(posts[v].n))
		vpst = append(vpst, posts[v].buf...)
	}
	if len(vpst) > math.MaxUint32 {
		return nil, nil, fmt.Errorf("cliqdb: VPST section is %d bytes, past the 4 GiB uint32 offset limit", len(vpst))
	}
	voff = putU32(voff, uint32(len(vpst)))

	// SIZE: clique IDs by (size desc, id asc).
	sort.Slice(sizeIdx, func(i, j int) bool {
		a, b := sizeIdx[i], sizeIdx[j]
		if len(kept[a]) != len(kept[b]) {
			return len(kept[a]) > len(kept[b])
		}
		return a < b
	})
	size := make([]byte, 0, n*4)
	for _, id := range sizeIdx {
		size = putU32(size, id)
	}

	meta := make([]byte, metaLen)
	binary.LittleEndian.PutUint32(meta[0:], formatVersion)
	binary.LittleEndian.PutUint32(meta[4:], uint32(nVerts))
	binary.LittleEndian.PutUint64(meta[8:], uint64(n))
	binary.LittleEndian.PutUint32(meta[16:], digest)

	// Frame the sections, then the footer, then the trailer.
	image := append([]byte(nil), headMagic[:]...)
	type entry struct {
		tag [4]byte
		off uint64
		ln  uint64
		crc uint32
	}
	var entries []entry
	writeSection := func(tag [4]byte, payload []byte) {
		entries = append(entries, entry{tag: tag, off: uint64(len(image)), ln: uint64(len(payload)), crc: crc32.ChecksumIEEE(payload)})
		image = append(image, tag[:]...)
		var l [8]byte
		binary.LittleEndian.PutUint64(l[:], uint64(len(payload)))
		image = append(image, l[:]...)
		image = append(image, payload...)
		image = putU32(image, crc32.ChecksumIEEE(payload))
	}
	writeSection(tagMeta, meta)
	writeSection(tagCliq, cliq)
	writeSection(tagCoff, coff)
	writeSection(tagVpst, vpst)
	writeSection(tagVoff, voff)
	writeSection(tagSize, size)

	foot := make([]byte, 0, 4+len(entries)*24)
	foot = putU32(foot, uint32(len(entries)))
	for _, e := range entries {
		foot = append(foot, e.tag[:]...)
		var l [8]byte
		binary.LittleEndian.PutUint64(l[:], e.off)
		foot = append(foot, l[:]...)
		binary.LittleEndian.PutUint64(l[:], e.ln)
		foot = append(foot, l[:]...)
		foot = putU32(foot, e.crc)
	}
	footOff := uint64(len(image))
	image = append(image, tagFtr[:]...)
	var l [8]byte
	binary.LittleEndian.PutUint64(l[:], uint64(len(foot)))
	image = append(image, l[:]...)
	image = append(image, foot...)
	image = putU32(image, crc32.ChecksumIEEE(foot))
	binary.LittleEndian.PutUint64(l[:], footOff)
	image = append(image, l[:]...)
	image = append(image, tailMagic[:]...)

	return image, &BuildStats{Cliques: n, Vertices: nVerts, Digest: digest}, nil
}

// writeAtomic lands the index image under path via temp + fsync + rename,
// writing in bounded chunks (with the chaos throttle between them) so a
// kill mid-write is exercised against a partially written temp file, never
// a partially written live index.
func writeAtomic(path string, image []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cliqdb: write index: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cliqdb: write index: %w", err)
	}
	for off := 0; off < len(image); off += writeChunk {
		end := off + writeChunk
		if end > len(image) {
			end = len(image)
		}
		if _, err := f.Write(image[off:end]); err != nil {
			return fail(err)
		}
		if compileThrottle != nil {
			compileThrottle()
		}
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cliqdb: write index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cliqdb: write index: %w", err)
	}
	return nil
}
