// Package cliqdb is the serving-side clique database: a compact, checksummed
// on-disk index compiled offline from cliqstore segments holding a run's
// final clique family (the serving segment directory mcefind -index-out
// writes — a run checkpoint's own segments are level-local resume state and
// are refused), and opened read-only by the query daemon (cmd/mced). The split mirrors the create-db / search-db shape the ROADMAP
// names: enumeration is the expensive offline build, queries are cheap
// online lookups over a vertex → containing-cliques inverted index plus a
// size-ordered index for top-k and community percolation.
//
// Robustness is the design center, not an afterthought:
//
//   - The compiler writes temp + fsync + rename, so a crash mid-compile can
//     never leave a torn file under the live name — the live index is either
//     the previous complete index or the new complete index.
//   - Every section is length-prefixed and CRC-32 framed, the footer that
//     locates the sections is itself CRC-framed, and the file ends in a
//     trailer magic; a bit flip or truncation anywhere is detected at Open.
//   - Open verifies structure, not just bytes: every clique must decode
//     exactly within its offset span in canonical order, every posting list
//     must agree with the cliques it indexes (checked by streaming cursors,
//     O(index size)), the size index must be the exact (size desc, id asc)
//     permutation, and the recomputed content digest must match the header.
//     A DB that opens cannot serve wrong data from a corrupt file.
//   - The serving segments stay authoritative: OpenOrRebuild answers any
//     detected corruption (or a missing index) with an automatic recompile
//     from the segment directory, and the compile is deterministic — same
//     segments, byte-identical index — so self-healing is idempotent.
//
// # On-disk format (version 1)
//
//	"MCEDB1\r\n"                          8-byte head magic
//	section*                              tag[4] len[8 LE] payload crc32[4 LE]
//	footer section (tag "FTR\x00")        payload: count[4 LE] then per
//	                                      section tag[4] off[8] len[8] crc[4]
//	footer offset [8 LE]  "MCEDBEND"      16-byte trailer
//
// Sections, in file order:
//
//	META  version[4] nverts[4] ncliques[8] digest[4]
//	CLIQ  per clique: uvarint size, uvarint first member, uvarint gaps
//	      (the cliqstore delta encoding), cliques in canonical order
//	      (lexicographic over ascending members, exact duplicates removed)
//	COFF  (ncliques+1) uint32 LE offsets into CLIQ
//	VPST  per vertex: uvarint count, uvarint first clique ID, uvarint gaps
//	VOFF  (nverts+1) uint32 LE offsets into VPST
//	SIZE  ncliques uint32 LE clique IDs ordered by (size desc, id asc)
//
// The digest in META is cliqstore.Digest over the canonical clique order,
// tying the index to the exactly-once content argument of DESIGN.md §12:
// a resumed run reproduces the same clique family, so it compiles to the
// same digest and the same bytes.
package cliqdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// File-format constants.
var (
	headMagic = [8]byte{'M', 'C', 'E', 'D', 'B', '1', '\r', '\n'}
	tailMagic = [8]byte{'M', 'C', 'E', 'D', 'B', 'E', 'N', 'D'}
)

// Section tags, in the order sections are written.
var (
	tagMeta = [4]byte{'M', 'E', 'T', 'A'}
	tagCliq = [4]byte{'C', 'L', 'I', 'Q'}
	tagCoff = [4]byte{'C', 'O', 'F', 'F'}
	tagVpst = [4]byte{'V', 'P', 'S', 'T'}
	tagVoff = [4]byte{'V', 'O', 'F', 'F'}
	tagSize = [4]byte{'S', 'I', 'Z', 'E'}
	tagFtr  = [4]byte{'F', 'T', 'R', 0}
)

const (
	formatVersion = 1
	metaLen       = 4 + 4 + 8 + 4
	frameOverhead = 4 + 8 + 4 // tag + length + crc
	trailerLen    = 8 + 8     // footer offset + tail magic
)

var (
	// ErrCorrupt reports an index whose bytes or structure fail
	// verification: a CRC mismatch, an impossible offset table, a posting
	// that disagrees with its cliques, a digest mismatch. The file cannot
	// be trusted; rebuild it from the segments.
	ErrCorrupt = errors.New("cliqdb: corrupt index")
	// ErrTruncated reports an index file that ends before its trailer —
	// the torn-write shape. Rebuild it from the segments.
	ErrTruncated = errors.New("cliqdb: truncated index")
)

// Rebuildable reports whether err is an open failure that a recompile from
// the authoritative segments fixes: a missing, truncated or corrupt index.
// Permission errors and I/O failures are not rebuildable — retrying the
// same bytes cannot help.
func Rebuildable(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated) || errors.Is(err, os.ErrNotExist)
}

// DB is an opened, fully verified clique database. All methods are
// read-only and safe for concurrent use; the hot lookup paths decode
// directly from the section bytes and append into caller-owned slices, so
// steady-state serving does not allocate.
type DB struct {
	nVerts   int32
	nCliques int
	digest   uint32

	cliq  []byte   // CLIQ section
	coff  []byte   // COFF section (uint32 LE array)
	vpst  []byte   // VPST section
	voff  []byte   // VOFF section (uint32 LE array)
	size  []byte   // SIZE section (uint32 LE array)
	sizes []uint32 // per-clique member count, decoded once at open
}

// NumVertices returns the vertex ID space of the index: valid vertex IDs
// are [0, NumVertices).
func (db *DB) NumVertices() int32 { return db.nVerts }

// NumCliques returns how many maximal cliques the index holds.
func (db *DB) NumCliques() int { return db.nCliques }

// Digest returns the content digest (cliqstore.Digest over the canonical
// clique order) sealed into the index header.
func (db *DB) Digest() uint32 { return db.digest }

// u32 reads the i-th uint32 of a packed little-endian array.
//
//mce:hotpath offset-table access on every lookup
func u32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i*4 : i*4+4])
}

// CliqueSize returns the member count of clique id. It panics on an
// out-of-range id — IDs come from this DB's own indexes.
//
//mce:hotpath size lookup on every top-k and community query
func (db *DB) CliqueSize(id uint32) int { return int(db.sizes[id]) }

// AppendClique decodes clique id's members into dst and returns the
// extended slice. Members are ascending. It panics on an out-of-range id.
//
//mce:hotpath clique materialisation on every query response
func (db *DB) AppendClique(dst []int32, id uint32) []int32 {
	span := db.cliq[u32(db.coff, int(id)):u32(db.coff, int(id)+1)]
	size, n := binary.Uvarint(span)
	span = span[n:]
	if cap(dst)-len(dst) < int(size) {
		grown := make([]int32, len(dst), len(dst)+int(size))
		copy(grown, dst)
		dst = grown
	}
	prev := int32(0)
	for i := uint64(0); i < size; i++ {
		delta, n := binary.Uvarint(span)
		span = span[n:]
		v := prev + int32(delta)
		if i == 0 {
			v = int32(delta)
		}
		dst = append(dst, v)
		prev = v
	}
	return dst
}

// postingCursor streams one vertex's posting list (ascending clique IDs).
type postingCursor struct {
	b    []byte
	left uint64
	last uint32
	head bool
}

// posting positions a cursor at vertex v's posting list.
//
//mce:hotpath posting-list access on every vertex query
func (db *DB) posting(v int32) postingCursor {
	span := db.vpst[u32(db.voff, int(v)):u32(db.voff, int(v)+1)]
	count, n := binary.Uvarint(span)
	return postingCursor{b: span[n:], left: count, head: true}
}

// next yields the next clique ID; ok is false when the posting is drained.
//
//mce:hotpath posting-list decode on every vertex query
func (c *postingCursor) next() (uint32, bool) {
	if c.left == 0 {
		return 0, false
	}
	c.left--
	delta, n := binary.Uvarint(c.b)
	c.b = c.b[n:]
	if c.head {
		c.head = false
		c.last = uint32(delta)
	} else {
		c.last += uint32(delta)
	}
	return c.last, true
}

// CliqueCount returns how many cliques contain vertex v, without decoding
// the posting list. Out-of-range vertices have zero cliques.
//
//mce:hotpath per-vertex cardinality on every query
func (db *DB) CliqueCount(v int32) int {
	if v < 0 || v >= db.nVerts {
		return 0
	}
	span := db.vpst[u32(db.voff, int(v)):u32(db.voff, int(v)+1)]
	count, _ := binary.Uvarint(span)
	return int(count)
}

// AppendCliquesOf appends the IDs of every clique containing v to dst
// (ascending) and returns the extended slice. Vertices outside the index's
// ID space simply have no cliques.
//
//mce:hotpath the cliques-of(v) lookup
func (db *DB) AppendCliquesOf(dst []uint32, v int32) []uint32 {
	if v < 0 || v >= db.nVerts {
		return dst
	}
	cur := db.posting(v)
	if cap(dst)-len(dst) < int(cur.left) {
		grown := make([]uint32, len(dst), len(dst)+int(cur.left))
		copy(grown, dst)
		dst = grown
	}
	for {
		id, ok := cur.next()
		if !ok {
			return dst
		}
		dst = append(dst, id)
	}
}

// AppendCommonCliques appends the IDs of every clique containing both u and
// v to dst (ascending) and returns the extended slice — a merge
// intersection of two posting lists with no intermediate materialisation.
//
//mce:hotpath the common-cliques(u,v) lookup
func (db *DB) AppendCommonCliques(dst []uint32, u, v int32) []uint32 {
	if u < 0 || u >= db.nVerts || v < 0 || v >= db.nVerts {
		return dst
	}
	a, b := db.posting(u), db.posting(v)
	x, okA := a.next()
	y, okB := b.next()
	for okA && okB {
		switch {
		case x == y:
			dst = append(dst, x)
			x, okA = a.next()
			y, okB = b.next()
		case x < y:
			x, okA = a.next()
		default:
			y, okB = b.next()
		}
	}
	return dst
}

// AppendTopK appends the IDs of the k largest cliques (ties by ascending
// ID) to dst and returns the extended slice. k larger than the index
// returns every clique.
//
//mce:hotpath the top-k lookup
func (db *DB) AppendTopK(dst []uint32, k int) []uint32 {
	if k > db.nCliques {
		k = db.nCliques
	}
	for i := 0; i < k; i++ {
		dst = append(dst, u32(db.size, i))
	}
	return dst
}

// MinSizeCount returns how many cliques have at least k members — the
// length of the size-index prefix AppendMinSize yields.
//
//mce:hotpath community-query sizing
func (db *DB) MinSizeCount(k int) int {
	return sort.Search(db.nCliques, func(i int) bool {
		return int(db.sizes[u32(db.size, i)]) < k
	})
}

// AppendMinSize appends the IDs of every clique with at least k members
// (largest first, ties by ascending ID) to dst — the candidate family for
// k-clique community percolation.
//
//mce:hotpath the community-query candidate scan
func (db *DB) AppendMinSize(dst []uint32, k int) []uint32 {
	n := db.MinSizeCount(k)
	for i := 0; i < n; i++ {
		dst = append(dst, u32(db.size, i))
	}
	return dst
}

// Cliques materialises every clique in canonical order. It is the bulk
// export used by community percolation and by tests; point queries should
// use AppendClique.
func (db *DB) Cliques() [][]int32 {
	out := make([][]int32, db.nCliques)
	for id := 0; id < db.nCliques; id++ {
		out[id] = db.AppendClique(make([]int32, 0, db.sizes[id]), uint32(id))
	}
	return out
}

// Open reads and fully verifies the index at path. The returned DB holds
// the whole index in memory (sections are kept as their raw byte ranges;
// lookups decode on the fly). Open fails with ErrTruncated / ErrCorrupt
// (wrapped, with detail) when the file does not verify — see OpenOrRebuild
// for the self-healing variant.
func Open(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cliqdb: %w", err)
	}
	db, err := openBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return db, nil
}

// OpenOrRebuild opens the index at path, answering a missing, truncated or
// corrupt file with an automatic recompile from the authoritative segment
// directory followed by a second Open. rebuilt reports whether the index
// was recompiled. An empty segDir disables self-healing and makes
// OpenOrRebuild equivalent to Open.
func OpenOrRebuild(path, segDir string) (db *DB, rebuilt bool, err error) {
	db, err = Open(path)
	if err == nil || segDir == "" || !Rebuildable(err) {
		return db, false, err
	}
	if _, cerr := CompileSegments(segDir, path); cerr != nil {
		return nil, false, fmt.Errorf("cliqdb: self-healing rebuild after %v: %w", err, cerr)
	}
	db, err = Open(path)
	if err != nil {
		return nil, true, fmt.Errorf("cliqdb: index still unreadable after rebuild: %w", err)
	}
	return db, true, nil
}

// section is one parsed footer entry.
type section struct {
	tag [4]byte
	off uint64
	ln  uint64
	crc uint32
}

// openBytes parses and verifies a whole index image. Every failure wraps
// ErrTruncated (file ends early) or ErrCorrupt (bytes present but wrong),
// so callers can decide rebuildability without string matching.
func openBytes(data []byte) (*DB, error) {
	if len(data) < len(headMagic)+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is smaller than the fixed framing", ErrTruncated, len(data))
	}
	if [8]byte(data[:8]) != headMagic {
		return nil, fmt.Errorf("%w: bad head magic", ErrCorrupt)
	}
	if [8]byte(data[len(data)-8:]) != tailMagic {
		return nil, fmt.Errorf("%w: missing trailer magic", ErrTruncated)
	}
	// All bounds checks below are subtraction-form: footOff, s.off and s.ln
	// come straight from untrusted bytes, so addition-form checks like
	// off+overhead > len can wrap at uint64 extremes and admit offsets that
	// later panic slicing. The min-length check above guarantees
	// len(data) >= len(headMagic)+trailerLen, so `limit` cannot underflow.
	footOff := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])
	limit := uint64(len(data) - trailerLen)
	if footOff < uint64(len(headMagic)) || footOff > limit || limit-footOff < frameOverhead {
		return nil, fmt.Errorf("%w: footer offset %d outside file", ErrCorrupt, footOff)
	}
	footPayload, err := frame(data, footOff, tagFtr)
	if err != nil {
		return nil, err
	}
	secs, err := parseFooter(footPayload)
	if err != nil {
		return nil, err
	}
	// Verify and collect each section the footer promises.
	want := [][4]byte{tagMeta, tagCliq, tagCoff, tagVpst, tagVoff, tagSize}
	if len(secs) != len(want) {
		return nil, fmt.Errorf("%w: footer lists %d sections, want %d", ErrCorrupt, len(secs), len(want))
	}
	payloads := make([][]byte, len(secs))
	for i, s := range secs {
		if s.tag != want[i] {
			return nil, fmt.Errorf("%w: section %d is %q, want %q", ErrCorrupt, i, s.tag[:], want[i][:])
		}
		if total := uint64(len(data)); s.off > total || total-s.off < frameOverhead || s.ln > total-s.off-frameOverhead {
			return nil, fmt.Errorf("%w: section %q overruns file", ErrCorrupt, s.tag[:])
		}
		p, err := frame(data, s.off, s.tag)
		if err != nil {
			return nil, err
		}
		if uint64(len(p)) != s.ln || crc32.ChecksumIEEE(p) != s.crc {
			return nil, fmt.Errorf("%w: section %q disagrees with footer", ErrCorrupt, s.tag[:])
		}
		payloads[i] = p
	}
	return verify(payloads)
}

// frame parses one tag/length/payload/CRC frame at off and returns the
// payload after checking tag and checksum.
func frame(data []byte, off uint64, tag [4]byte) ([]byte, error) {
	// Subtraction-form bounds checks: off and ln are untrusted, and
	// addition-form checks wrap at uint64 extremes (see openBytes).
	total := uint64(len(data))
	if off > total || total-off < 12 {
		return nil, fmt.Errorf("%w: frame header at %d overruns file", ErrTruncated, off)
	}
	if [4]byte(data[off:off+4]) != tag {
		return nil, fmt.Errorf("%w: expected section %q at offset %d", ErrCorrupt, tag[:], off)
	}
	ln := binary.LittleEndian.Uint64(data[off+4 : off+12])
	avail := total - off - 12
	if ln > avail || avail-ln < 4 {
		return nil, fmt.Errorf("%w: section %q payload overruns file", ErrTruncated, tag[:])
	}
	end := off + 12 + ln
	payload := data[off+12 : end]
	sum := binary.LittleEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: section %q CRC mismatch", ErrCorrupt, tag[:])
	}
	return payload, nil
}

// parseFooter decodes the footer payload into its section table.
func parseFooter(p []byte) ([]section, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: footer too short", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	const entryLen = 4 + 8 + 8 + 4
	if uint64(len(p)) != uint64(count)*entryLen {
		return nil, fmt.Errorf("%w: footer claims %d sections in %d bytes", ErrCorrupt, count, len(p))
	}
	secs := make([]section, count)
	for i := range secs {
		e := p[i*entryLen:]
		copy(secs[i].tag[:], e[:4])
		secs[i].off = binary.LittleEndian.Uint64(e[4:12])
		secs[i].ln = binary.LittleEndian.Uint64(e[12:20])
		secs[i].crc = binary.LittleEndian.Uint32(e[20:24])
	}
	return secs, nil
}

// minUvarint decodes one uvarint and additionally rejects non-minimal
// encodings, so a verified index is the one canonical byte encoding of its
// content — the property that makes self-healing rebuilds byte-identical
// and is pinned by FuzzIndexOpen's round-trip check.
func minUvarint(b []byte) (v uint64, n int) {
	v, n = binary.Uvarint(b)
	if n > 1 && v < 1<<(7*(n-1)) {
		return 0, 0 // value had a shorter encoding
	}
	return v, n
}

// verify cross-checks the decoded sections against each other and builds
// the DB. After it succeeds, every lookup is total: offsets are monotonic
// and in range, every clique and posting decodes exactly, postings agree
// with cliques, the size index is the exact expected permutation, and the
// content digest matches the header.
func verify(payloads [][]byte) (*DB, error) {
	meta, cliq, coff, vpst, voff, size := payloads[0], payloads[1], payloads[2], payloads[3], payloads[4], payloads[5]
	if len(meta) != metaLen {
		return nil, fmt.Errorf("%w: META is %d bytes, want %d", ErrCorrupt, len(meta), metaLen)
	}
	if v := binary.LittleEndian.Uint32(meta); v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrCorrupt, v, formatVersion)
	}
	nVerts := int64(binary.LittleEndian.Uint32(meta[4:]))
	nCliques := binary.LittleEndian.Uint64(meta[8:])
	digest := binary.LittleEndian.Uint32(meta[16:])
	if nVerts > 1<<31-1 || nCliques > 1<<31 {
		return nil, fmt.Errorf("%w: implausible counts (%d vertices, %d cliques)", ErrCorrupt, nVerts, nCliques)
	}
	if uint64(len(coff)) != (nCliques+1)*4 {
		return nil, fmt.Errorf("%w: COFF holds %d bytes for %d cliques", ErrCorrupt, len(coff), nCliques)
	}
	if int64(len(voff)) != (nVerts+1)*4 {
		return nil, fmt.Errorf("%w: VOFF holds %d bytes for %d vertices", ErrCorrupt, len(voff), nVerts)
	}
	if uint64(len(size)) != nCliques*4 {
		return nil, fmt.Errorf("%w: SIZE holds %d bytes for %d cliques", ErrCorrupt, len(size), nCliques)
	}
	db := &DB{
		nVerts:   int32(nVerts),
		nCliques: int(nCliques),
		digest:   digest,
		cliq:     cliq,
		coff:     coff,
		vpst:     vpst,
		voff:     voff,
		size:     size,
		sizes:    make([]uint32, nCliques),
	}

	// Pass 1 — cliques: each must decode exactly within its span, members
	// strictly ascending inside the vertex space, spans contiguous and
	// exhaustive, canonical (lexicographic, duplicate-free) global order,
	// and the whole family must hash to the header digest. Per-vertex
	// posting counts are accumulated for pass 2.
	crc := crc32.NewIEEE()
	var hbuf [4]byte
	counts := make([]uint32, nVerts)
	prevClique := []int32(nil)
	scratch := make([]int32, 0, 64)
	for id := uint64(0); id < nCliques; id++ {
		lo, hi := u32(coff, int(id)), u32(coff, int(id)+1)
		if lo > hi || uint64(hi) > uint64(len(cliq)) {
			return nil, fmt.Errorf("%w: clique %d has offset span [%d,%d)", ErrCorrupt, id, lo, hi)
		}
		span := cliq[lo:hi]
		sz, n := minUvarint(span)
		if n <= 0 || sz == 0 || sz > uint64(nVerts) {
			return nil, fmt.Errorf("%w: clique %d has size %d", ErrCorrupt, id, sz)
		}
		span = span[n:]
		scratch = scratch[:0]
		prev := int64(-1)
		for i := uint64(0); i < sz; i++ {
			delta, n := minUvarint(span)
			if n <= 0 {
				return nil, fmt.Errorf("%w: clique %d truncated mid-member", ErrCorrupt, id)
			}
			span = span[n:]
			v := prev + int64(delta)
			if i == 0 {
				v = int64(delta)
			} else if delta == 0 {
				return nil, fmt.Errorf("%w: clique %d repeats member %d", ErrCorrupt, id, prev)
			}
			if v >= nVerts {
				return nil, fmt.Errorf("%w: clique %d member %d outside vertex space %d", ErrCorrupt, id, v, nVerts)
			}
			counts[v]++
			scratch = append(scratch, int32(v))
			prev = v
		}
		if len(span) != 0 {
			return nil, fmt.Errorf("%w: clique %d leaves %d undecoded bytes in its span", ErrCorrupt, id, len(span))
		}
		if id > 0 && compareCliques(prevClique, scratch) >= 0 {
			return nil, fmt.Errorf("%w: clique %d out of canonical order", ErrCorrupt, id)
		}
		db.sizes[id] = uint32(sz)
		binary.LittleEndian.PutUint32(hbuf[:], uint32(sz))
		crc.Write(hbuf[:])
		for _, v := range scratch {
			binary.LittleEndian.PutUint32(hbuf[:], uint32(v))
			crc.Write(hbuf[:])
		}
		prevClique = append(prevClique[:0], scratch...)
	}
	if u32(coff, 0) != 0 || u32(coff, int(nCliques)) != uint32(len(cliq)) {
		return nil, fmt.Errorf("%w: COFF does not cover CLIQ exactly", ErrCorrupt)
	}
	if crc.Sum32() != digest {
		return nil, fmt.Errorf("%w: content digest %#x, header promises %#x", ErrCorrupt, crc.Sum32(), digest)
	}

	// Pass 2 — postings: every vertex's list must decode exactly within its
	// span with the promised count, IDs strictly ascending and in range.
	// Then pass 3 replays the cliques through per-vertex cursors, so each
	// posting is proven to name exactly the cliques containing its vertex.
	cursors := make([]postingCursor, nVerts)
	for v := int64(0); v < nVerts; v++ {
		lo, hi := u32(voff, int(v)), u32(voff, int(v)+1)
		if lo > hi || uint64(hi) > uint64(len(vpst)) {
			return nil, fmt.Errorf("%w: vertex %d has posting span [%d,%d)", ErrCorrupt, v, lo, hi)
		}
		span := vpst[lo:hi]
		count, n := minUvarint(span)
		if n <= 0 || count != uint64(counts[v]) {
			return nil, fmt.Errorf("%w: vertex %d posting claims %d cliques, cliques hold it %d times", ErrCorrupt, v, count, counts[v])
		}
		cur := postingCursor{b: span[n:], left: count, head: true}
		rest := span[n:]
		last := int64(-1)
		for i := uint64(0); i < count; i++ {
			delta, n := minUvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("%w: vertex %d posting truncated", ErrCorrupt, v)
			}
			rest = rest[n:]
			id := last + int64(delta)
			if i == 0 {
				id = int64(delta)
			} else if delta == 0 {
				return nil, fmt.Errorf("%w: vertex %d posting not ascending at %d", ErrCorrupt, v, id)
			}
			if uint64(id) >= nCliques {
				return nil, fmt.Errorf("%w: vertex %d posting names clique %d of %d", ErrCorrupt, v, id, nCliques)
			}
			last = id
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: vertex %d posting leaves %d undecoded bytes", ErrCorrupt, v, len(rest))
		}
		cursors[v] = cur
	}
	if int64(u32(voff, 0)) != 0 || u32(voff, int(nVerts)) != uint32(len(vpst)) {
		return nil, fmt.Errorf("%w: VOFF does not cover VPST exactly", ErrCorrupt)
	}
	for id := uint64(0); id < nCliques; id++ {
		scratch = db.AppendClique(scratch[:0], uint32(id))
		for _, v := range scratch {
			got, ok := cursors[v].next()
			if !ok || uint64(got) != id {
				return nil, fmt.Errorf("%w: vertex %d posting disagrees with clique %d", ErrCorrupt, v, id)
			}
		}
	}

	// Pass 4 — size index: exactly the (size desc, id asc) permutation.
	seen := make([]bool, nCliques)
	for i := uint64(0); i < nCliques; i++ {
		id := u32(size, int(i))
		if uint64(id) >= nCliques || seen[id] {
			return nil, fmt.Errorf("%w: SIZE entry %d names clique %d (dup or out of range)", ErrCorrupt, i, id)
		}
		seen[id] = true
		if i > 0 {
			prev := u32(size, int(i)-1)
			if db.sizes[prev] < db.sizes[id] ||
				(db.sizes[prev] == db.sizes[id] && prev >= id) {
				return nil, fmt.Errorf("%w: SIZE out of order at entry %d", ErrCorrupt, i)
			}
		}
	}
	return db, nil
}

// compareCliques orders cliques lexicographically over their ascending
// members, shorter-prefix first — the canonical index order.
func compareCliques(a, b []int32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
