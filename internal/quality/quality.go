// Package quality scores detected communities: internal density, cut
// conductance, triangle participation and clustering coefficients — the
// measures the community-detection literature the paper surveys (§7: SCD
// [29] optimises triangle counts, WalkTrap [28] gives "no warranty on the
// quality of the solutions") uses to compare methods, plus Jaccard-based
// recovery scoring against a planted ground truth.
package quality

import (
	"fmt"
	"sort"

	"mce/internal/graph"
)

// Score describes one community's structural quality inside a graph.
type Score struct {
	// Size is the number of members.
	Size int
	// InternalEdges and CutEdges count edges inside the set and leaving it.
	InternalEdges, CutEdges int
	// Density is InternalEdges / (Size choose 2); 0 for singletons.
	Density float64
	// Conductance is CutEdges / (2·InternalEdges + CutEdges); lower is
	// better separated. 0 when the set has no incident edges at all.
	Conductance float64
	// TrianglePart is the fraction of members participating in at least
	// one internal triangle (SCD's signal).
	TrianglePart float64
}

// Evaluate scores one community.
func Evaluate(g *graph.Graph, members []int32) Score {
	in := make(map[int32]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	s := Score{Size: len(members)}
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				if v < u {
					s.InternalEdges++
				}
			} else {
				s.CutEdges++
			}
		}
	}
	if s.Size >= 2 {
		s.Density = float64(s.InternalEdges) / float64(s.Size*(s.Size-1)/2)
	}
	if vol := 2*s.InternalEdges + s.CutEdges; vol > 0 {
		s.Conductance = float64(s.CutEdges) / float64(vol)
	}
	inTriangle := 0
	for _, v := range members {
		found := false
		adj := g.Neighbors(v)
		for i, a := range adj {
			if !in[a] {
				continue
			}
			for _, b := range adj[i+1:] {
				if in[b] && g.HasEdge(a, b) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			inTriangle++
		}
	}
	if s.Size > 0 {
		s.TrianglePart = float64(inTriangle) / float64(s.Size)
	}
	return s
}

// GlobalClustering returns the transitivity of g: 3·triangles / open plus
// closed wedges. A high value is the fingerprint of social networks (and of
// the Holme–Kim surrogates standing in for them).
func GlobalClustering(g *graph.Graph) float64 {
	triangles := 0
	wedges := 0
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.Degree(v)
		wedges += d * (d - 1) / 2
		adj := g.Neighbors(v)
		for i, a := range adj {
			for _, b := range adj[i+1:] {
				if g.HasEdge(a, b) {
					triangles++ // counted once per centre v → 3 per triangle
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	return float64(triangles) / float64(wedges)
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two node sets.
func Jaccard(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	am := make(map[int32]bool, len(a))
	for _, v := range a {
		am[v] = true
	}
	inter := 0
	bm := make(map[int32]bool, len(b))
	for _, v := range b {
		if bm[v] {
			continue
		}
		bm[v] = true
		if am[v] {
			inter++
		}
	}
	union := len(am) + len(bm) - inter
	return float64(inter) / float64(union)
}

// Recovery matches detected communities against a planted ground truth:
// for every truth group it takes the best-Jaccard detected community and
// averages the scores (a standard best-match F-style recovery measure).
// It returns the average and the per-group best scores, truth order.
func Recovery(truth, detected [][]int32) (float64, []float64, error) {
	if len(truth) == 0 {
		return 0, nil, fmt.Errorf("quality: empty ground truth")
	}
	per := make([]float64, len(truth))
	sum := 0.0
	for i, t := range truth {
		best := 0.0
		for _, d := range detected {
			if j := Jaccard(t, d); j > best {
				best = j
			}
		}
		per[i] = best
		sum += best
	}
	return sum / float64(len(truth)), per, nil
}

// RankByConductance orders community indices best-separated first.
func RankByConductance(g *graph.Graph, communities [][]int32) []int {
	scores := make([]Score, len(communities))
	for i, c := range communities {
		scores[i] = Evaluate(g, c)
	}
	order := make([]int, len(communities))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa.Conductance != sb.Conductance {
			return sa.Conductance < sb.Conductance
		}
		return sa.Size > sb.Size
	})
	return order
}

// CoverStats summarises how a community family covers the node set.
type CoverStats struct {
	// Coverage is the fraction of the n nodes in at least one community.
	Coverage float64
	// AvgMemberships is the mean community count over covered nodes.
	AvgMemberships float64
	// MaxMemberships is the largest number of communities any node joins —
	// the overlap depth plain partitioning methods cannot express (§7).
	MaxMemberships int
}

// Cover computes CoverStats for communities over a graph of n nodes.
func Cover(n int, communities [][]int32) CoverStats {
	counts := map[int32]int{}
	for _, c := range communities {
		for _, v := range c {
			counts[v]++
		}
	}
	var s CoverStats
	if n > 0 {
		s.Coverage = float64(len(counts)) / float64(n)
	}
	total := 0
	for _, k := range counts {
		total += k
		if k > s.MaxMemberships {
			s.MaxMemberships = k
		}
	}
	if len(counts) > 0 {
		s.AvgMemberships = float64(total) / float64(len(counts))
	}
	return s
}
