package quality

import (
	"math"
	"testing"
	"testing/quick"

	"mce/internal/community"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func TestEvaluateClique(t *testing.T) {
	g := graph.Complete(5)
	s := Evaluate(g, []int32{0, 1, 2, 3, 4})
	if s.Density != 1 || s.CutEdges != 0 || s.Conductance != 0 {
		t.Fatalf("K5 score = %+v", s)
	}
	if s.TrianglePart != 1 {
		t.Fatalf("K5 triangle participation = %v", s.TrianglePart)
	}
}

func TestEvaluateWithCut(t *testing.T) {
	// Triangle {0,1,2} with one external edge 2-3.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	s := Evaluate(g, []int32{0, 1, 2})
	if s.InternalEdges != 3 || s.CutEdges != 1 {
		t.Fatalf("edges = %+v", s)
	}
	want := 1.0 / 7.0
	if math.Abs(s.Conductance-want) > 1e-12 {
		t.Fatalf("conductance = %v, want %v", s.Conductance, want)
	}
	// Singleton community: everything zero-ish, no panic.
	s = Evaluate(g, []int32{3})
	if s.Density != 0 || s.TrianglePart != 0 {
		t.Fatalf("singleton score = %+v", s)
	}
	if s.CutEdges != 1 {
		t.Fatalf("singleton cut = %d", s.CutEdges)
	}
}

func TestGlobalClustering(t *testing.T) {
	if c := GlobalClustering(graph.Complete(4)); c != 1 {
		t.Fatalf("K4 clustering = %v, want 1", c)
	}
	// Star: wedges but no triangles.
	b := graph.NewBuilder(5)
	for v := int32(1); v < 5; v++ {
		b.AddEdge(0, v)
	}
	if c := GlobalClustering(b.Build()); c != 0 {
		t.Fatalf("star clustering = %v, want 0", c)
	}
	if c := GlobalClustering(graph.Empty(3)); c != 0 {
		t.Fatalf("empty clustering = %v", c)
	}
	// Social surrogates are strongly clustered, BA graphs much less.
	hk := GlobalClustering(gen.HolmeKim(1000, 5, 0.8, 7))
	ba := GlobalClustering(gen.BarabasiAlbert(1000, 5, 7))
	if hk <= ba {
		t.Fatalf("Holme–Kim clustering %v not above BA %v", hk, ba)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int32
		want float64
	}{
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 1},
		{[]int32{1, 2}, []int32{3, 4}, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]int32{1}, nil, 0},
		{[]int32{1, 1, 2}, []int32{1, 2}, 1}, // duplicates collapse
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRecoveryEmptyTruth(t *testing.T) {
	if _, _, err := Recovery(nil, nil); err == nil {
		t.Fatal("empty truth accepted")
	}
}

func TestRecoveryPerfect(t *testing.T) {
	truth := [][]int32{{0, 1, 2}, {3, 4, 5}}
	avg, per, err := Recovery(truth, [][]int32{{3, 4, 5}, {0, 1, 2}})
	if err != nil || avg != 1 || per[0] != 1 || per[1] != 1 {
		t.Fatalf("avg=%v per=%v err=%v", avg, per, err)
	}
}

func TestCliquePercolationRecoversPlantedPartition(t *testing.T) {
	// The headline integration test: CPM over the engine's maximal cliques
	// recovers a strong planted partition nearly perfectly.
	g, truth := gen.PlantedPartition(gen.PlantedPartitionSpec{
		Communities: 4, Size: 12, PIn: 0.85, POut: 0.01, Seed: 11,
	})
	cliques, err := mcealg.Collect(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists})
	if err != nil {
		t.Fatal(err)
	}
	comms, err := community.Detect(cliques, 4)
	if err != nil {
		t.Fatal(err)
	}
	detected := make([][]int32, len(comms))
	for i, c := range comms {
		detected[i] = c.Nodes
	}
	avg, per, err := Recovery(truth, detected)
	if err != nil {
		t.Fatal(err)
	}
	if avg < 0.8 {
		t.Fatalf("planted partition recovery = %.2f (per group %v), want ≥ 0.8", avg, per)
	}
}

func TestRankByConductance(t *testing.T) {
	// Community {0,1,2} is perfectly separated; {3,4} leaks via 4-5.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5},
	})
	order := RankByConductance(g, [][]int32{{3, 4}, {0, 1, 2}})
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v", order)
	}
}

// Property: conductance and density are always in [0, 1] and a set with no
// cut edges has conductance 0.
func TestQuickScoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(25, 0.2, seed)
		for v := int32(0); v < 20; v += 5 {
			s := Evaluate(g, []int32{v, v + 1, v + 2, v + 3, v + 4})
			if s.Density < 0 || s.Density > 1 ||
				s.Conductance < 0 || s.Conductance > 1 ||
				s.TrianglePart < 0 || s.TrianglePart > 1 {
				return false
			}
			if s.CutEdges == 0 && s.Conductance != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard is symmetric and bounded.
func TestQuickJaccardSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		as := make([]int32, len(a))
		bs := make([]int32, len(b))
		for i, v := range a {
			as[i] = int32(v)
		}
		for i, v := range b {
			bs[i] = int32(v)
		}
		x, y := Jaccard(as, bs), Jaccard(bs, as)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCover(t *testing.T) {
	cs := [][]int32{{0, 1, 2}, {2, 3}}
	s := Cover(10, cs)
	if s.Coverage != 0.4 {
		t.Fatalf("Coverage = %v, want 0.4", s.Coverage)
	}
	if s.MaxMemberships != 2 {
		t.Fatalf("MaxMemberships = %d", s.MaxMemberships)
	}
	if s.AvgMemberships != 1.25 {
		t.Fatalf("AvgMemberships = %v", s.AvgMemberships)
	}
	empty := Cover(5, nil)
	if empty.Coverage != 0 || empty.AvgMemberships != 0 || empty.MaxMemberships != 0 {
		t.Fatalf("empty cover = %+v", empty)
	}
	if z := Cover(0, cs); z.Coverage != 0 {
		t.Fatalf("zero-node cover = %+v", z)
	}
}
