package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"mce/internal/decomp"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
	"mce/internal/runlog"
	"mce/internal/telemetry"
)

// sortedFamily canonicalises a clique family for set comparison.
func sortedFamily(cliques [][]int32) []string {
	out := make([]string, len(cliques))
	for i, c := range cliques {
		out[i] = fmt.Sprint(c)
	}
	sort.Strings(out)
	return out
}

func familiesEqual(a, b [][]int32) bool {
	sa, sb := sortedFamily(a), sortedFamily(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func openCheckpoint(t *testing.T, dir string, g *graph.Graph, opts Options) *runlog.Checkpoint {
	t.Helper()
	cp, err := runlog.Open(dir, CheckpointIdentity(g, opts), runlog.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestCheckpointedRunMatchesPlain pins that checkpointing is invisible to
// the result: same cliques, same order, and the journal records completion.
func TestCheckpointedRunMatchesPlain(t *testing.T) {
	g := gen.HolmeKim(300, 5, 0.7, 19)
	opts := Options{BlockSize: 24}
	plain, err := FindMaxCliques(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cpOpts := opts
	cpOpts.Checkpoint = openCheckpoint(t, dir, g, opts)
	chk, err := FindMaxCliques(g, cpOpts)
	if err != nil {
		t.Fatal(err)
	}
	cpOpts.Checkpoint.Close()
	if !familiesEqual(plain.Cliques, chk.Cliques) {
		t.Fatalf("checkpointed run found %d cliques, plain %d", len(chk.Cliques), len(plain.Cliques))
	}
	if chk.Stats.ResumedBlocks != 0 {
		t.Fatalf("fresh checkpointed run resumed %d blocks", chk.Stats.ResumedBlocks)
	}

	reopened := openCheckpoint(t, dir, g, opts)
	defer reopened.Close()
	if !reopened.Completed() {
		t.Fatal("completed run's journal does not record run end")
	}
}

// TestResumeServesEveryBlockFromSegments pins the full-resume path: after a
// completed checkpointed run, a resumed run must answer entirely from the
// journal and segments — the executor must never be invoked.
func TestResumeServesEveryBlockFromSegments(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 7)
	opts := Options{BlockSize: 20}
	dir := t.TempDir()

	cpOpts := opts
	cpOpts.Checkpoint = openCheckpoint(t, dir, g, opts)
	first, err := FindMaxCliques(g, cpOpts)
	if err != nil {
		t.Fatal(err)
	}
	cpOpts.Checkpoint.Close()
	totalBlocks := 0
	for _, lvl := range first.Stats.Levels {
		totalBlocks += lvl.Blocks
		if lvl.Blocks == 0 && lvl.Hubs == lvl.Nodes {
			totalBlocks++ // terminal core counts as one journaled block
		}
	}

	met := telemetry.NewEngine()
	resOpts := opts
	resOpts.Executor = forbiddenExecutor{}
	resOpts.Metrics = met
	cp, err := runlog.Open(dir, CheckpointIdentity(g, opts), runlog.Options{NoSync: true, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	resOpts.Checkpoint = cp
	resumed, err := FindMaxCliques(g, resOpts)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if !familiesEqual(first.Cliques, resumed.Cliques) {
		t.Fatalf("resume changed the clique set: %d vs %d", len(resumed.Cliques), len(first.Cliques))
	}
	if resumed.Stats.ResumedBlocks != totalBlocks {
		t.Fatalf("ResumedBlocks = %d, want every block (%d)", resumed.Stats.ResumedBlocks, totalBlocks)
	}
	if n := met.Snapshot().CheckpointBlocksSkipped; int(n) != totalBlocks {
		t.Fatalf("telemetry skipped counter = %d, want %d", n, totalBlocks)
	}
}

// forbiddenExecutor fails the test if a resumed run dispatches anything.
type forbiddenExecutor struct{}

func (forbiddenExecutor) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return nil, errors.New("executor invoked on a fully-journaled resume")
}

// flakyExecutor wraps a LocalExecutor and injects a deterministic crash
// after a budget of block completions — the stand-in for a coordinator
// dying mid-run. It processes blocks one at a time so the failure point is
// exact.
type flakyExecutor struct {
	inner  *LocalExecutor
	mu     sync.Mutex
	budget int
}

var errInjected = errors.New("injected executor failure")

func (f *flakyExecutor) take() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget <= 0 {
		return false
	}
	f.budget--
	return true
}

func (f *flakyExecutor) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return f.AnalyzeBlocksContext(context.Background(), blocks, combos)
}

func (f *flakyExecutor) AnalyzeBlocksContext(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	out := make([][][]int32, len(blocks))
	for i := range blocks {
		if !f.take() {
			return nil, errInjected
		}
		res, err := f.inner.AnalyzeBlocksContext(ctx, blocks[i:i+1], combos[i:i+1])
		if err != nil {
			return nil, err
		}
		out[i] = res[0]
	}
	return out, nil
}

func (f *flakyExecutor) AnalyzeBlocksCheckpoint(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	out := make([][][]int32, len(blocks))
	for i := range blocks {
		if !f.take() {
			return nil, errInjected
		}
		res, err := f.inner.AnalyzeBlocksCheckpoint(ctx, blocks[i:i+1], combos[i:i+1], ids[i:i+1], obs)
		if err != nil {
			return nil, err
		}
		out[i] = res[0]
	}
	return out, nil
}

// TestResumeAfterResume drives a run through two injected crashes and a
// final clean session, asserting each resume picks up strictly after the
// last — the satellite's resume-after-resume requirement — and that the
// final clique set matches an uninterrupted run.
func TestResumeAfterResume(t *testing.T) {
	g := gen.HolmeKim(300, 5, 0.7, 23)
	opts := Options{BlockSize: 24}
	want, err := FindMaxCliques(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	budgets := []int{2, 3}
	var prevDone int64
	for session, budget := range budgets {
		cp := openCheckpoint(t, dir, g, opts)
		runOpts := opts
		runOpts.Checkpoint = cp
		runOpts.Executor = &flakyExecutor{inner: &LocalExecutor{Parallelism: 1}, budget: budget}
		_, err := FindMaxCliques(g, runOpts)
		if !errors.Is(err, errInjected) {
			cp.Close()
			t.Fatalf("session %d: err %v, want injected failure", session, err)
		}
		done := cp.SkippedBlocks()
		if session > 0 && done < prevDone {
			t.Fatalf("session %d resumed fewer blocks (%d) than the previous session completed (%d)", session, done, prevDone)
		}
		prevDone = done + int64(budget)
		cp.Close()
	}

	cp := openCheckpoint(t, dir, g, opts)
	finalOpts := opts
	finalOpts.Checkpoint = cp
	got, err := FindMaxCliques(g, finalOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.ResumedBlocks == 0 {
		t.Fatal("final session resumed nothing despite two crashed predecessors")
	}
	cp.Close()
	if !familiesEqual(want.Cliques, got.Cliques) {
		t.Fatalf("resume-after-resume changed the clique set: %d vs %d cliques", len(got.Cliques), len(want.Cliques))
	}
}

// TestStreamRejectsCheckpoint pins the exactly-once guard: streaming
// cannot be checkpointed.
func TestStreamRejectsCheckpoint(t *testing.T) {
	g := gen.ErdosRenyi(50, 0.2, 3)
	opts := Options{BlockSize: 10}
	cp := openCheckpoint(t, t.TempDir(), g, opts)
	defer cp.Close()
	opts.Checkpoint = cp
	_, err := Stream(g, opts, func([]int32, int) {})
	if err == nil {
		t.Fatal("streaming accepted a checkpoint")
	}
}

// TestCheckpointIdentitySensitivity pins which options are plan-affecting:
// the identity must move when they change and hold still when transport or
// filter options change.
func TestCheckpointIdentitySensitivity(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.2, 5)
	base := Options{BlockSize: 12}
	id := CheckpointIdentity(g, base)

	changed := []Options{
		{BlockSize: 13},
		{BlockSize: 12, Block: decomp.Options{MinAdjacency: 3}},
		{BlockSize: 12, Block: decomp.Options{Order: decomp.OrderRandom, Seed: 42}},
		{BlockSize: 12, MaxLevels: 1},
	}
	for i, o := range changed {
		if CheckpointIdentity(g, o) == id {
			t.Fatalf("plan-affecting change %d did not move the identity", i)
		}
	}

	same := []Options{
		{BlockSize: 12, UseExtensionFilter: true},
		{BlockSize: 12, Schedule: ScheduleLPT},
		{BlockSize: 12, Parallelism: 7},
	}
	for i, o := range same {
		if CheckpointIdentity(g, o) != id {
			t.Fatalf("plan-neutral change %d moved the identity", i)
		}
	}

	g2 := gen.ErdosRenyi(60, 0.2, 6)
	if CheckpointIdentity(g2, base) == id {
		t.Fatal("different graph, same identity")
	}
}
