package core

import (
	"testing"

	"mce/internal/decomp"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
	"mce/internal/telemetry"
)

// telemetryGraph is a multi-level test input: a Holme–Kim scale-free graph
// whose hubs force at least one hub recursion at a small m.
func telemetryGraph() *graph.Graph {
	return gen.HolmeKim(300, 4, 0.6, 7)
}

func TestFindMaxCliquesTelemetrySnapshot(t *testing.T) {
	g := telemetryGraph()
	eng := telemetry.NewEngine()
	res, err := FindMaxCliques(g, Options{BlockRatio: 0.3, Metrics: eng})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)

	s := res.Stats.Telemetry
	if s == nil {
		t.Fatal("Stats.Telemetry is nil with Metrics set")
	}
	if s.BlocksBuilt == 0 || s.BlocksAnalyzed != s.BlocksBuilt {
		t.Fatalf("blocks built=%d analysed=%d", s.BlocksBuilt, s.BlocksAnalyzed)
	}
	if s.RecursionNodes == 0 || s.PivotSelections == 0 {
		t.Fatalf("mcealg counters empty: nodes=%d pivots=%d", s.RecursionNodes, s.PivotSelections)
	}
	if s.LevelsCompleted != int64(len(res.Stats.Levels)) {
		t.Fatalf("LevelsCompleted = %d, want %d", s.LevelsCompleted, len(res.Stats.Levels))
	}
	if s.QueueDepth != 0 || s.TasksInFlight != 0 {
		t.Fatalf("gauges not back to zero: queue=%d inflight=%d", s.QueueDepth, s.TasksInFlight)
	}
	if s.BlockNs.Count != s.BlocksAnalyzed {
		t.Fatalf("BlockNs.Count = %d, want %d", s.BlockNs.Count, s.BlocksAnalyzed)
	}
	var picks int64
	for _, c := range s.Combos {
		picks += c.Picks
		if c.Combo == "" {
			t.Fatalf("combo slot without label: %+v", c)
		}
	}
	if picks < s.BlocksBuilt {
		t.Fatalf("combo picks = %d, want ≥ %d", picks, s.BlocksBuilt)
	}
	// CliquesFound counts raw per-level discoveries; the Lemma 1 filter
	// removes HubCliquesFiltered of them to produce the returned family.
	if s.CliquesFound-s.HubCliquesFiltered != int64(res.Stats.TotalCliques) {
		t.Fatalf("found %d − filtered %d ≠ returned %d",
			s.CliquesFound, s.HubCliquesFiltered, res.Stats.TotalCliques)
	}
}

func TestTelemetryNilByDefault(t *testing.T) {
	res, err := FindMaxCliques(telemetryGraph(), Options{BlockRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Telemetry != nil {
		t.Fatalf("Stats.Telemetry = %+v without Metrics", res.Stats.Telemetry)
	}
}

func TestStreamTelemetrySnapshot(t *testing.T) {
	g := telemetryGraph()
	eng := telemetry.NewEngine()
	n := 0
	stats, err := Stream(g, Options{BlockRatio: 0.3, Metrics: eng}, func([]int32, int) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Telemetry
	if s == nil {
		t.Fatal("stream Stats.Telemetry is nil with Metrics set")
	}
	if s.BlocksBuilt == 0 || s.RecursionNodes == 0 {
		t.Fatalf("stream telemetry empty: %+v", s)
	}
	if s.CliquesFound-s.HubCliquesFiltered != int64(n) {
		t.Fatalf("found %d − filtered %d ≠ emitted %d", s.CliquesFound, s.HubCliquesFiltered, n)
	}
}

// TestLevelStatsAggregation pins the cross-level accounting of Stats.Levels
// against the run's ground truth: per-level Kernel equals Feasible (every
// feasible node is kernel in exactly one block), the level clique counts sum
// to the raw discoveries, and the returned totals match TotalCliques and
// HubCliques.
func TestLevelStatsAggregation(t *testing.T) {
	g := telemetryGraph()
	eng := telemetry.NewEngine()
	res, err := FindMaxCliques(g, Options{BlockRatio: 0.25, Metrics: eng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Levels) < 2 {
		t.Fatalf("want a multi-level run, got %d levels", len(res.Stats.Levels))
	}
	var levelCliques int64
	for i, lvl := range res.Stats.Levels {
		if lvl.Blocks > 0 && lvl.Kernel != lvl.Feasible {
			t.Fatalf("level %d: Kernel %d ≠ Feasible %d", i, lvl.Kernel, lvl.Feasible)
		}
		if lvl.Blocks > 0 && lvl.Kernel+lvl.Border+lvl.Visited < lvl.Nodes {
			// Blocks cover the level's graph: every node is kernel, border
			// or visited in at least one block.
			t.Fatalf("level %d: kernel+border+visited %d < nodes %d",
				i, lvl.Kernel+lvl.Border+lvl.Visited, lvl.Nodes)
		}
		levelCliques += int64(lvl.Cliques)
	}
	s := res.Stats.Telemetry
	if levelCliques != s.CliquesFound {
		t.Fatalf("sum(Levels.Cliques) = %d, telemetry CliquesFound = %d", levelCliques, s.CliquesFound)
	}
	if levelCliques-s.HubCliquesFiltered != int64(res.Stats.TotalCliques) {
		t.Fatalf("levels %d − filtered %d ≠ total %d", levelCliques, s.HubCliquesFiltered, res.Stats.TotalCliques)
	}
	hubLevels := 0
	for _, lvl := range res.Level {
		if lvl >= 1 {
			hubLevels++
		}
	}
	if hubLevels != res.Stats.HubCliques {
		t.Fatalf("Level entries ≥1 = %d, HubCliques = %d", hubLevels, res.Stats.HubCliques)
	}
	if res.Stats.TotalCliques != len(res.Cliques) {
		t.Fatalf("TotalCliques %d ≠ len(Cliques) %d", res.Stats.TotalCliques, len(res.Cliques))
	}
}

// TestAnalyzeBlockInstrNilAllocsMatch proves the acceptance criterion that
// disabled telemetry adds zero allocations to the block-analysis hot loop:
// AnalyzeBlockInstr with a nil receiver allocates exactly as much as the
// pre-telemetry AnalyzeBlock entry point.
func TestAnalyzeBlockInstrNilAllocsMatch(t *testing.T) {
	g := gen.HolmeKim(200, 5, 0.5, 3)
	feasible, _ := decomp.Cut(g, 40)
	blocks := decomp.Blocks(g, feasible, 40, decomp.Options{})
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	combo := mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	emit := func([]int32) {}
	base := testing.AllocsPerRun(20, func() {
		for i := range blocks {
			if err := decomp.AnalyzeBlock(&blocks[i], combo, emit); err != nil {
				t.Fatal(err)
			}
		}
	})
	instr := testing.AllocsPerRun(20, func() {
		for i := range blocks {
			if err := decomp.AnalyzeBlockInstr(&blocks[i], combo, emit, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	if instr > base {
		t.Fatalf("AnalyzeBlockInstr(nil) allocates %v/run, AnalyzeBlock %v/run", instr, base)
	}
}

// BenchmarkAnalyzeBlocksTelemetry quantifies the telemetry overhead on the
// block-analysis loop. The disabled case must report 0 B/op extra versus
// never instrumenting at all — run with -benchmem to inspect.
func BenchmarkAnalyzeBlocksTelemetry(b *testing.B) {
	g := gen.HolmeKim(400, 5, 0.5, 3)
	feasible, _ := decomp.Cut(g, 60)
	blocks := decomp.Blocks(g, feasible, 60, decomp.Options{})
	combos := make([]mcealg.Combo, len(blocks))
	for i := range blocks {
		combos[i] = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	emit := func([]int32) {}
	run := func(b *testing.B, ins *telemetry.BlockInstr, eng *telemetry.Engine) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			for i := range blocks {
				if err := decomp.AnalyzeBlockInstr(&blocks[i], combos[i], emit, ins); err != nil {
					b.Fatal(err)
				}
				if eng != nil {
					eng.MergeBlockInstr(ins)
				}
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil, nil) })
	b.Run("enabled", func(b *testing.B) {
		run(b, &telemetry.BlockInstr{}, telemetry.NewEngine())
	})
}
