package core

import (
	"context"
	"time"

	"mce/internal/bitset"
	"mce/internal/decomp"
	"mce/internal/filter"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

// Stream enumerates every maximal clique of g like FindMaxCliques but hands
// each clique to emit as soon as its block batch completes, instead of
// accumulating the full result. Memory stays bounded by the largest block
// batch plus the (small) hub-side recursion — the regime the paper targets,
// where the clique family can dwarf main memory.
//
// emit receives the clique (ascending node IDs; the slice must not be
// retained) and the recursion level it was found at. Cliques arrive in the
// same deterministic order FindMaxCliques returns.
//
// Streaming uses the Lemma 1 extension filter unconditionally: the
// containment filter would need every feasible-side clique of a level kept
// in memory, which is exactly what streaming avoids. Options.Executor and
// all decomposition options are honoured.
func Stream(g *graph.Graph, opts Options, emit func(clique []int32, level int)) (*Stats, error) {
	return StreamContext(context.Background(), g, opts, emit)
}

// StreamContext is Stream with cancellation, mirroring
// FindMaxCliquesContext: the context is checked between recursion levels
// and handed to ContextExecutor implementations.
func StreamContext(ctx context.Context, g *graph.Graph, opts Options, emit func(clique []int32, level int)) (*Stats, error) {
	if g.N() == 0 {
		return nil, ErrNoNodes
	}
	if opts.Checkpoint != nil {
		// Checkpoint resume replays completed blocks out of their segments;
		// a streaming consumer has already observed (and cannot un-observe)
		// whatever the crashed run emitted, so resumed streaming would
		// duplicate cliques. Refuse rather than betray exactly-once.
		return nil, errCheckpointStream
	}
	maxDeg := g.MaxDegree()
	m := resolveBlockSize(maxDeg, opts)
	sel := selector(opts)
	exec := opts.Executor
	if exec == nil {
		exec = &LocalExecutor{Parallelism: opts.Parallelism, Metrics: opts.Metrics, MemoryBudget: opts.MemoryBudget, IntraBlockParallelism: opts.IntraBlockParallelism}
	}
	stats := &Stats{BlockSize: m, MaxDegree: maxDeg}
	if err := streamRecursive(ctx, g, m, sel, exec, opts, stats, 0, emit); err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		snap := opts.Metrics.Snapshot()
		stats.Telemetry = &snap
	}
	return stats, nil
}

func streamRecursive(ctx context.Context, g *graph.Graph, m int, sel func(*decomp.Block) mcealg.Combo, exec Executor, opts Options, stats *Stats, level int, emit func([]int32, int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	met := opts.Metrics
	start := time.Now()
	feasible, hubs := decomp.Cut(g, m)

	if len(feasible) == 0 || (opts.MaxLevels > 0 && level >= opts.MaxLevels && len(hubs) > 0) {
		blk := wholeGraphBlock(g)
		combo := sel(blk)
		if met != nil {
			met.ComboPicked(combo.Index(), combo.Label())
		}
		n := 0
		err := mcealg.EnumeratePar(g, combo, corePar(opts), func(c []int32) {
			emit(c, level)
			n++
		})
		if err != nil {
			return err
		}
		stats.CoreFallback = true
		stats.TotalCliques += n
		stats.Levels = append(stats.Levels, LevelStats{
			Nodes: g.N(), Edges: g.M(), Hubs: g.N(),
			Cliques: n, Analysis: time.Since(start),
		})
		if met != nil {
			met.CliquesFound.Add(int64(n))
			met.LevelsCompleted.Inc()
		}
		return nil
	}

	blocks := decomp.Blocks(g, feasible, m, opts.Block)
	combos := make([]mcealg.Combo, len(blocks))
	var kernelSum, borderSum, visitedSum int
	for i := range blocks {
		combos[i] = sel(&blocks[i])
		kernelSum += len(blocks[i].Kernel)
		borderSum += len(blocks[i].Border)
		visitedSum += len(blocks[i].Visited)
		if met != nil {
			idx := combos[i].Index()
			met.ComboPicked(idx, combos[i].Label())
		}
	}
	if met != nil {
		met.BlocksBuilt.Add(int64(len(blocks)))
		met.KernelNodes.Add(int64(kernelSum))
		met.BorderNodes.Add(int64(borderSum))
		met.VisitedNodes.Add(int64(visitedSum))
	}
	decompTime := time.Since(start)

	start = time.Now()
	perBlock, err := analyzeScheduled(ctx, exec, blocks, combos, opts.Schedule, nil, nil)
	if err != nil {
		return err
	}
	levelCliques := 0
	for _, cliques := range perBlock {
		for _, c := range cliques {
			emit(c, level)
			levelCliques++
		}
	}
	analysisTime := time.Since(start)
	stats.TotalCliques += levelCliques
	stats.Levels = append(stats.Levels, LevelStats{
		Nodes: g.N(), Edges: g.M(),
		Feasible: len(feasible), Hubs: len(hubs),
		Blocks: len(blocks),
		Kernel: kernelSum, Border: borderSum, Visited: visitedSum,
		Cliques: levelCliques,
		Decomp:  decompTime, Analysis: analysisTime,
	})
	if met != nil {
		met.CliquesFound.Add(int64(levelCliques))
		met.LevelsCompleted.Inc()
	}
	if opts.OnLevel != nil {
		opts.OnLevel(stats.Levels[len(stats.Levels)-1])
	}

	if len(hubs) == 0 {
		return nil
	}

	// Recurse on the hub-induced subgraph, filtering survivors by the
	// extension test before emitting — no Cf retention required.
	sub, orig := graph.Induced(g, hubs)
	feasSet := bitset.FromSlice(g.N(), feasible)
	isFeasible := func(v int32) bool { return feasSet.Has(v) }
	translated := make([]int32, 0, 64)
	inner := func(c []int32, subLevel int) {
		translated = translated[:0]
		for _, v := range c {
			translated = append(translated, orig[v])
		}
		start := time.Now()
		keep := !filter.Extensible(g, translated, isFeasible)
		elapsed := time.Since(start)
		stats.FilterTime += elapsed
		if met != nil {
			met.FilterNs.Add(int64(elapsed))
		}
		if keep {
			emit(translated, level+1+subLevel)
			stats.TotalCliques++
			stats.HubCliques++
		} else if met != nil {
			met.HubCliquesFiltered.Inc()
		}
	}
	subStats := &Stats{}
	if err := streamRecursive(ctx, sub, m, sel, exec, opts, subStats, 0, inner); err != nil {
		return err
	}
	stats.Levels = append(stats.Levels, subStats.Levels...)
	stats.CoreFallback = stats.CoreFallback || subStats.CoreFallback
	stats.FilterTime += subStats.FilterTime
	return nil
}
