package core

import (
	"errors"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
)

// collectStream drains Stream into slices for comparison with the batch
// engine.
func collectStream(t *testing.T, g *graph.Graph, opts Options) ([][]int32, []int, *Stats) {
	t.Helper()
	var cliques [][]int32
	var levels []int
	stats, err := Stream(g, opts, func(c []int32, level int) {
		cp := make([]int32, len(c))
		copy(cp, c)
		cliques = append(cliques, cp)
		levels = append(levels, level)
	})
	if err != nil {
		t.Fatal(err)
	}
	return cliques, levels, stats
}

func TestStreamMatchesBatch(t *testing.T) {
	g := gen.HolmeKim(500, 5, 0.7, 37)
	for _, ratio := range []float64{0.9, 0.4, 0.1} {
		batch, err := FindMaxCliques(g, Options{BlockRatio: ratio, UseExtensionFilter: true})
		if err != nil {
			t.Fatal(err)
		}
		cliques, levels, stats := collectStream(t, g, Options{BlockRatio: ratio})
		if len(cliques) != len(batch.Cliques) {
			t.Fatalf("ratio %v: stream %d cliques, batch %d", ratio, len(cliques), len(batch.Cliques))
		}
		for i := range cliques {
			if key(cliques[i]) != key(batch.Cliques[i]) || levels[i] != batch.Level[i] {
				t.Fatalf("ratio %v: stream diverges at %d: %v/%d vs %v/%d",
					ratio, i, cliques[i], levels[i], batch.Cliques[i], batch.Level[i])
			}
		}
		if stats.TotalCliques != len(cliques) {
			t.Fatalf("stats.TotalCliques = %d, emitted %d", stats.TotalCliques, len(cliques))
		}
		if stats.HubCliques != batch.Stats.HubCliques {
			t.Fatalf("HubCliques: stream %d, batch %d", stats.HubCliques, batch.Stats.HubCliques)
		}
		if len(stats.Levels) != len(batch.Stats.Levels) {
			t.Fatalf("level counts differ: %d vs %d", len(stats.Levels), len(batch.Stats.Levels))
		}
	}
}

func TestStreamEmptyGraph(t *testing.T) {
	if _, err := Stream(graph.Empty(0), Options{}, func([]int32, int) {}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestStreamCoreFallback(t *testing.T) {
	g := graph.Complete(8)
	cliques, levels, stats := collectStream(t, g, Options{BlockSize: 3})
	if !stats.CoreFallback {
		t.Fatal("expected fallback on stalled recursion")
	}
	if len(cliques) != 1 || key(cliques[0]) != "0,1,2,3,4,5,6,7" || levels[0] != 0 {
		t.Fatalf("stream fallback = %v @ %v", cliques, levels)
	}
}

func TestStreamHardChain(t *testing.T) {
	g := gen.HardChain(30, 4, 0)
	cliques, _, stats := collectStream(t, g, Options{BlockSize: 5})
	batch, err := FindMaxCliques(g, Options{BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != len(batch.Cliques) {
		t.Fatalf("hard chain: stream %d vs batch %d", len(cliques), len(batch.Cliques))
	}
	if len(stats.Levels) != len(batch.Stats.Levels) {
		t.Fatalf("hard chain level counts: %d vs %d", len(stats.Levels), len(batch.Stats.Levels))
	}
}

func TestStreamEmitBufferReused(t *testing.T) {
	// The emitted slice may be reused; a caller who stores aliases would
	// corrupt data. Verify correctness with a copying caller and that a
	// hostile mutation does not break later emissions.
	g := gen.ErdosRenyi(60, 0.2, 4)
	count := 0
	_, err := Stream(g, Options{}, func(c []int32, _ int) {
		count++
		for i := range c {
			c[i] = -1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := FindMaxCliques(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(batch.Cliques) {
		t.Fatalf("hostile caller broke the stream: %d vs %d", count, len(batch.Cliques))
	}
}

// Property: streaming equals batch for random graphs and ratios.
func TestQuickStreamEqualsBatch(t *testing.T) {
	f := func(seed int64, rawRatio uint8) bool {
		g := gen.BarabasiAlbert(int(seed%70)+15, 3, seed)
		ratio := 0.1 + float64(rawRatio%9)*0.1
		batch, err := FindMaxCliques(g, Options{BlockRatio: ratio})
		if err != nil {
			return false
		}
		got := map[string]bool{}
		n := 0
		_, err = Stream(g, Options{BlockRatio: ratio}, func(c []int32, _ int) {
			cp := make([]int32, len(c))
			copy(cp, c)
			got[key(cp)] = true
			n++
		})
		if err != nil || n != len(batch.Cliques) || len(got) != n {
			return false
		}
		for _, c := range batch.Cliques {
			if !got[key(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
