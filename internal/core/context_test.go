package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"mce/internal/decomp"
	"mce/internal/gen"
	"mce/internal/mcealg"
)

func TestFindMaxCliquesContextPreCancelled(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.15, 31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FindMaxCliquesContext(ctx, g, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, err := StreamContext(ctx, g, Options{}, func([]int32, int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled", err)
	}
}

func TestFindMaxCliquesContextBackground(t *testing.T) {
	g := gen.HolmeKim(150, 4, 0.6, 37)
	res, err := FindMaxCliquesContext(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
}

func TestLocalExecutorContextCancelled(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.15, 41)
	feasible, _ := decomp.Cut(g, g.MaxDegree()+1)
	blocks := decomp.Blocks(g, feasible, g.MaxDegree()+1, decomp.Options{})
	combos := make([]mcealg.Combo, len(blocks))
	for i := range combos {
		combos[i] = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exec := &LocalExecutor{}
	if _, err := exec.AnalyzeBlocksContext(ctx, blocks, combos); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// countingContextExecutor proves the engine prefers the context-aware
// interface when the executor implements it.
type countingContextExecutor struct {
	LocalExecutor
	calls int32
}

func (e *countingContextExecutor) AnalyzeBlocksContext(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	atomic.AddInt32(&e.calls, 1)
	return e.LocalExecutor.AnalyzeBlocksContext(ctx, blocks, combos)
}

func TestContextExecutorPreferred(t *testing.T) {
	g := gen.HolmeKim(150, 4, 0.6, 43)
	exec := &countingContextExecutor{}
	res, err := FindMaxCliquesContext(context.Background(), g, Options{Executor: exec})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	if atomic.LoadInt32(&exec.calls) == 0 {
		t.Fatal("ContextExecutor implementation was never used")
	}
}

// TestAnalyzeBlocksDelegatesToContext pins the non-ctx → ctx delegation:
// AnalyzeBlocks must be exactly AnalyzeBlocksContext(Background), so both
// return the same clique family for the same block list.
func TestAnalyzeBlocksDelegatesToContext(t *testing.T) {
	g := gen.HolmeKim(120, 4, 0.6, 47)
	feasible, _ := decomp.Cut(g, g.MaxDegree()+1)
	blocks := decomp.Blocks(g, feasible, g.MaxDegree()+1, decomp.Options{})
	combos := make([]mcealg.Combo, len(blocks))
	for i := range combos {
		combos[i] = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	exec := &LocalExecutor{}
	plain, err := exec.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := exec.AnalyzeBlocksContext(context.Background(), blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(ctxed) {
		t.Fatalf("AnalyzeBlocks returned %d block results, AnalyzeBlocksContext %d", len(plain), len(ctxed))
	}
	for i := range plain {
		if len(plain[i]) != len(ctxed[i]) {
			t.Fatalf("block %d: %d cliques without context, %d with background context",
				i, len(plain[i]), len(ctxed[i]))
		}
	}
}
