package core

import (
	"fmt"
	"strings"
	"testing"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
	"mce/internal/telemetry"
)

// findCliques runs FindMaxCliques and returns the clique sequence verbatim.
func findCliques(t *testing.T, g *graph.Graph, opts Options) [][]int32 {
	t.Helper()
	res, err := FindMaxCliques(g, opts)
	if err != nil {
		t.Fatalf("FindMaxCliques: %v", err)
	}
	return res.Cliques
}

func assertIdenticalSequence(t *testing.T, what string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cliques, want %d", what, len(got), len(want))
	}
	for i := range want {
		if key(got[i]) != key(want[i]) {
			t.Fatalf("%s: clique %d = {%s}, want {%s} — intra-block parallelism changed the output sequence",
				what, i, key(got[i]), key(want[i]))
		}
	}
}

// TestIntraBlockParallelEquivalence: the full pipeline (decomposition,
// block analysis, hub recursion, Lemma-1 filter) must produce the identical
// clique sequence at every intra-block width. Sequence equality — not just
// set equality — is what keeps checkpoint digests and resume byte-stable.
func TestIntraBlockParallelEquivalence(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"holme-kim", gen.HolmeKim(260, 6, 0.5, 21)},
		{"barabasi-albert", gen.BarabasiAlbert(260, 7, 22)},
		// Dense enough that the terminal (m+1)-core fallback fires, which is
		// the single-enumeration path intra-block parallelism exists for.
		{"dense-core", gen.ErdosRenyi(160, 0.5, 23)},
	}
	for _, tc := range graphs {
		want := findCliques(t, tc.g, Options{})
		if len(want) == 0 {
			t.Fatalf("%s: no cliques — workload too trivial to validate", tc.name)
		}
		for _, w := range []int{2, 4, 8} {
			got := findCliques(t, tc.g, Options{IntraBlockParallelism: w})
			assertIdenticalSequence(t, fmt.Sprintf("%s/w%d", tc.name, w), got, want)
		}
	}
}

// TestIntraBlockParallelStreamEquivalence covers the streaming pipeline's
// separate core-fallback call site.
func TestIntraBlockParallelStreamEquivalence(t *testing.T) {
	g := gen.ErdosRenyi(140, 0.45, 31)
	collect := func(opts Options) [][]int32 {
		var out [][]int32
		_, err := Stream(g, opts, func(c []int32, _ int) {
			cp := make([]int32, len(c))
			copy(cp, c)
			out = append(out, cp)
		})
		if err != nil {
			t.Fatalf("Stream: %v", err)
		}
		return out
	}
	want := collect(Options{})
	got := collect(Options{IntraBlockParallelism: 4})
	assertIdenticalSequence(t, "stream", got, want)
}

// TestParallelSelectorUpgrade: with intra-block parallelism on, large
// BitSets blocks must be upgraded to BitSetsParallel and small ones left
// sequential; fixed non-BitSets combos must never be overridden.
func TestParallelSelectorUpgrade(t *testing.T) {
	sel := selector(Options{IntraBlockParallelism: 4})
	big := wholeGraphBlock(gen.ErdosRenyi(parallelMinBlockNodes, 0.5, 1))
	if c := sel(big); c.Struct != mcealg.BitSetsParallel {
		t.Fatalf("large dense block selected %v, want BitSetsParallel", c)
	}
	small := wholeGraphBlock(gen.ErdosRenyi(32, 0.5, 2))
	if c := sel(small); c.Struct == mcealg.BitSetsParallel {
		t.Fatalf("small block selected %v; pool overhead should keep it sequential", c)
	}
	lists := mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.Lists}
	sel = selector(Options{IntraBlockParallelism: 4, FixedCombo: &lists})
	if c := sel(big); c.Struct != mcealg.Lists {
		t.Fatalf("fixed Lists combo was overridden to %v", c)
	}
	seq := selector(Options{})
	if c := seq(big); c.Struct == mcealg.BitSetsParallel {
		t.Fatalf("selector upgraded to BitSetsParallel without intra-block parallelism")
	}
}

// TestIntraBlockParallelTelemetry: the BitSetsParallel combo indices sit
// above the paper's 12-slot grid; picks and analyses must land in the
// extended cells rather than being silently dropped.
func TestIntraBlockParallelTelemetry(t *testing.T) {
	idx := mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSetsParallel}.Index()
	if idx < 12 || idx >= telemetry.NumCombos {
		t.Fatalf("BitSetsParallel/Tomita index %d outside telemetry range [12, %d)", idx, telemetry.NumCombos)
	}
	met := telemetry.NewEngine()
	g := gen.ErdosRenyi(160, 0.5, 41)
	if _, err := FindMaxCliques(g, Options{IntraBlockParallelism: 4, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	for _, c := range snap.Combos {
		if strings.HasPrefix(c.Combo, "[BitSetsParallel/") && (c.Picks > 0 || c.Blocks > 0) {
			return
		}
	}
	t.Fatalf("no BitSetsParallel combo recorded any picks/blocks in telemetry: %+v", snap.Combos)
}
