package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/decomp"
	"mce/internal/dtree"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/kcore"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// assertComplete checks that res contains exactly the maximal cliques of g,
// each exactly once.
func assertComplete(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	want := mcealg.ReferenceCollect(g)
	got := map[string]int{}
	for _, c := range res.Cliques {
		got[key(c)]++
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("clique {%s} appears %d times", k, n)
		}
	}
	if len(res.Cliques) != len(want) {
		t.Fatalf("got %d cliques, want %d", len(res.Cliques), len(want))
	}
	for _, c := range want {
		if got[key(c)] != 1 {
			t.Fatalf("clique {%s} missing", key(c))
		}
	}
	if len(res.Level) != len(res.Cliques) {
		t.Fatalf("Level has %d entries for %d cliques", len(res.Level), len(res.Cliques))
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := FindMaxCliques(graph.Empty(0), Options{}); err != ErrNoNodes {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestSingleNode(t *testing.T) {
	res, err := FindMaxCliques(graph.Empty(1), Options{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cliques) != 1 || key(res.Cliques[0]) != "0" {
		t.Fatalf("Cliques = %v", res.Cliques)
	}
}

func TestCompleteGraphSmallM(t *testing.T) {
	// K8 with m=3: every node has degree 7 ≥ m, so the recursion stalls
	// immediately and the core fallback must kick in.
	g := graph.Complete(8)
	res, err := FindMaxCliques(g, Options{BlockSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	if !res.Stats.CoreFallback {
		t.Fatalf("expected CoreFallback on the stalled recursion")
	}
}

func TestHubsProduceSecondLevel(t *testing.T) {
	// Star K1,10 with m=4: the centre is a hub, leaves are feasible.
	b := graph.NewBuilder(11)
	for v := int32(1); v < 11; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	res, err := FindMaxCliques(g, Options{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	if len(res.Stats.Levels) < 2 {
		t.Fatalf("expected ≥ 2 levels, got %+v", res.Stats.Levels)
	}
	if res.Stats.Levels[0].Hubs != 1 {
		t.Fatalf("level 0 hubs = %d, want 1", res.Stats.Levels[0].Hubs)
	}
	// Every clique {0,v} contains a feasible leaf → all level 0.
	if res.Stats.HubCliques != 0 {
		t.Fatalf("HubCliques = %d, want 0", res.Stats.HubCliques)
	}
}

func TestHubOnlyCliqueDetected(t *testing.T) {
	// The paper's motivating scenario: a clique entirely among hubs.
	// Build a K5 "hub core" and attach many leaves to each core node so
	// their degrees blow past m, then pick m small.
	b := graph.NewBuilder(5 + 5*20)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	next := int32(5)
	for u := int32(0); u < 5; u++ {
		for i := 0; i < 20; i++ {
			b.AddEdge(u, next)
			next++
		}
	}
	g := b.Build()
	res, err := FindMaxCliques(g, Options{BlockSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	// {0,1,2,3,4} must be reported and must be attributed to a hub level.
	found := false
	for i, c := range res.Cliques {
		if key(c) == "0,1,2,3,4" {
			found = true
			if res.Level[i] < 1 {
				t.Fatalf("hub-only clique attributed to level %d", res.Level[i])
			}
		}
	}
	if !found {
		t.Fatalf("hub-only clique missing")
	}
	if res.Stats.HubCliques < 1 {
		t.Fatalf("HubCliques = %d, want ≥ 1", res.Stats.HubCliques)
	}
}

func TestFilterDropsNonMaximalHubCliques(t *testing.T) {
	// Hub pair {0,1} adjacent, plus feasible node 2 adjacent to both:
	// {0,1} is maximal in the hub graph but contained in {0,1,2}.
	b := graph.NewBuilder(3 + 8 + 8)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	next := int32(3)
	for u := int32(0); u < 2; u++ {
		for i := 0; i < 8; i++ {
			b.AddEdge(u, next)
			next++
		}
	}
	g := b.Build()
	// m=5: deg(0)=deg(1)=10 ≥ 5 → hubs; node 2 degree 2 → feasible.
	res, err := FindMaxCliques(g, Options{BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	for _, c := range res.Cliques {
		if key(c) == "0,1" {
			t.Fatalf("non-maximal hub clique {0,1} survived the filter")
		}
	}
}

func TestBlockRatioDerivesM(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 7)
	res, err := FindMaxCliques(g, Options{BlockRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	wantM := int(0.3*float64(g.MaxDegree()) + 0.999)
	if res.Stats.BlockSize != wantM {
		t.Fatalf("BlockSize = %d, want %d", res.Stats.BlockSize, wantM)
	}
	assertComplete(t, g, res)
}

func TestDefaultRatioIsHalf(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 8)
	res, err := FindMaxCliques(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantM := int(0.5*float64(g.MaxDegree()) + 0.999)
	if res.Stats.BlockSize != wantM {
		t.Fatalf("BlockSize = %d, want %d", res.Stats.BlockSize, wantM)
	}
}

func TestFixedComboPath(t *testing.T) {
	g := gen.HolmeKim(200, 4, 0.6, 15)
	for _, combo := range []mcealg.Combo{
		{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
		{Alg: mcealg.XPivot, Struct: mcealg.Matrix},
	} {
		combo := combo
		res, err := FindMaxCliques(g, Options{BlockRatio: 0.4, FixedCombo: &combo})
		if err != nil {
			t.Fatal(err)
		}
		assertComplete(t, g, res)
	}
}

func TestTrainedTreePath(t *testing.T) {
	g := gen.HolmeKim(200, 4, 0.6, 16)
	tree := dtree.Train([]dtree.Sample{
		{F: kcore.Features{Nodes: 10, Edges: 20, Density: 0.2, Degeneracy: 2, DStar: 3},
			Best: mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}},
		{F: kcore.Features{Nodes: 100, Edges: 900, Density: 0.5, Degeneracy: 20, DStar: 25},
			Best: mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists}},
	}, dtree.Options{MinLeaf: 1})
	res, err := FindMaxCliques(g, Options{BlockRatio: 0.5, Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
}

func TestMaxLevelsForcesFallback(t *testing.T) {
	// HardChain needs many levels; capping at 2 must fall back and stay
	// complete.
	g := gen.HardChain(40, 4, 0)
	res, err := FindMaxCliques(g, Options{BlockSize: 5, MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	if !res.Stats.CoreFallback {
		t.Fatalf("expected CoreFallback with MaxLevels=2")
	}
	if len(res.Stats.Levels) > 3 {
		t.Fatalf("levels = %d despite cap", len(res.Stats.Levels))
	}
}

func TestHardChainManyLevels(t *testing.T) {
	// Without a cap, the Theorem 1 construction needs Ω(n) levels.
	n := 30
	g := gen.HardChain(n, 4, 0)
	res, err := FindMaxCliques(g, Options{BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, g, res)
	if len(res.Stats.Levels) < n/2 {
		t.Fatalf("levels = %d, expected Ω(n) ≈ %d", len(res.Stats.Levels), n)
	}
}

func TestDeterministicOutput(t *testing.T) {
	g := gen.HolmeKim(300, 5, 0.7, 19)
	a, err := FindMaxCliques(g, Options{BlockRatio: 0.4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindMaxCliques(g, Options{BlockRatio: 0.4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cliques) != len(b.Cliques) {
		t.Fatalf("parallelism changed clique count: %d vs %d", len(a.Cliques), len(b.Cliques))
	}
	for i := range a.Cliques {
		if key(a.Cliques[i]) != key(b.Cliques[i]) || a.Level[i] != b.Level[i] {
			t.Fatalf("output order differs at %d", i)
		}
	}
}

func TestStatsLevelIterationCounts(t *testing.T) {
	// The paper reports 2 first-level iterations for m/d ∈ {0.5, 0.9} and
	// 3 for {0.1, 0.3} on its datasets. Our surrogates should stay in the
	// same few-iterations regime (Theorem 1's pathology excepted).
	g := gen.HolmeKim(2000, 6, 0.7, 23)
	for _, ratio := range []float64{0.9, 0.5, 0.1} {
		res, err := FindMaxCliques(g, Options{BlockRatio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(res.Stats.Levels); n < 1 || n > 8 {
			t.Fatalf("ratio %.1f: %d levels, expected a small number", ratio, n)
		}
	}
}

func TestLocalExecutorErrorPropagates(t *testing.T) {
	// Force an error by requesting Matrix on an oversized block via a
	// malicious selector bypassing SafePredict.
	g := gen.ErdosRenyi(50, 0.2, 3)
	blocks := []decomp.Block{*wholeGraphBlockForTest(graph.Empty(mcealg.MatrixMaxNodes + 1))}
	combos := []mcealg.Combo{{Alg: mcealg.Tomita, Struct: mcealg.Matrix}}
	_, err := (&LocalExecutor{}).AnalyzeBlocks(blocks, combos)
	if err == nil {
		t.Fatalf("oversized matrix block did not error")
	}
	_ = g
}

func wholeGraphBlockForTest(g *graph.Graph) *decomp.Block { return wholeGraphBlock(g) }

func TestLocalExecutorComboMismatch(t *testing.T) {
	_, err := (&LocalExecutor{}).AnalyzeBlocks(make([]decomp.Block, 2), make([]mcealg.Combo, 1))
	if err == nil {
		t.Fatalf("mismatched lengths accepted")
	}
}

func TestLocalExecutorEmpty(t *testing.T) {
	out, err := (&LocalExecutor{}).AnalyzeBlocks(nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

// Property: FindMaxCliques equals the reference enumeration for random
// graphs across the paper's m/d ratios.
func TestQuickCompleteness(t *testing.T) {
	ratios := []float64{0.9, 0.5, 0.1}
	f := func(seed int64, modelPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 10
		var g *graph.Graph
		switch modelPick % 3 {
		case 0:
			g = gen.ErdosRenyi(n, 0.2, seed)
		case 1:
			g = gen.BarabasiAlbert(n, 3, seed)
		default:
			g = gen.HolmeKim(n, 4, 0.6, seed)
		}
		want := map[string]bool{}
		for _, c := range mcealg.ReferenceCollect(g) {
			want[key(c)] = true
		}
		for _, r := range ratios {
			res, err := FindMaxCliques(g, Options{BlockRatio: r})
			if err != nil {
				return false
			}
			if len(res.Cliques) != len(want) {
				return false
			}
			for _, c := range res.Cliques {
				if !want[key(c)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Level labelling is consistent — a clique is labelled level
// ≥ 1 exactly when all its nodes are hubs of the original graph.
func TestQuickLevelLabelling(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.BarabasiAlbert(int(seed%60)+20, 4, seed)
		m := g.MaxDegree()/2 + 1
		res, err := FindMaxCliques(g, Options{BlockSize: m})
		if err != nil {
			return false
		}
		if res.Stats.Levels[0].Feasible == 0 {
			// Degenerate case: every node is a hub, the level-0 core
			// fallback enumerated the whole graph and labels are all 0.
			return res.Stats.CoreFallback
		}
		for i, c := range res.Cliques {
			allHubs := true
			for _, v := range c {
				if g.Degree(v) < m {
					allHubs = false
					break
				}
			}
			if (res.Level[i] >= 1) != allHubs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindMaxCliques(b *testing.B) {
	g := gen.HolmeKim(3000, 6, 0.7, 41)
	for _, ratio := range []float64{0.9, 0.5, 0.1} {
		b.Run(fmt.Sprintf("ratio-%.1f", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FindMaxCliques(g, Options{BlockRatio: ratio}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestExtensionFilterEquivalent(t *testing.T) {
	g := gen.BarabasiAlbert(400, 5, 23)
	for _, ratio := range []float64{0.5, 0.2} {
		a, err := FindMaxCliques(g, Options{BlockRatio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		b, err := FindMaxCliques(g, Options{BlockRatio: ratio, UseExtensionFilter: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Cliques) != len(b.Cliques) {
			t.Fatalf("ratio %v: containment %d vs extension %d cliques", ratio, len(a.Cliques), len(b.Cliques))
		}
		for i := range a.Cliques {
			if key(a.Cliques[i]) != key(b.Cliques[i]) || a.Level[i] != b.Level[i] {
				t.Fatalf("ratio %v: results diverge at %d", ratio, i)
			}
		}
		assertComplete(t, g, b)
	}
}

func TestLPTScheduleSameOutput(t *testing.T) {
	g := gen.HolmeKim(600, 5, 0.7, 29)
	fifo, err := FindMaxCliques(g, Options{BlockRatio: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := FindMaxCliques(g, Options{BlockRatio: 0.4, Schedule: ScheduleLPT, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fifo.Cliques) != len(lpt.Cliques) {
		t.Fatalf("LPT changed clique count: %d vs %d", len(lpt.Cliques), len(fifo.Cliques))
	}
	for i := range fifo.Cliques {
		if key(fifo.Cliques[i]) != key(lpt.Cliques[i]) || fifo.Level[i] != lpt.Level[i] {
			t.Fatalf("LPT permuted the output at %d", i)
		}
	}
	assertComplete(t, g, lpt)
}

// trackingExecutor records the order blocks arrive in.
type trackingExecutor struct {
	inner LocalExecutor
	sizes []int64
}

func (e *trackingExecutor) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	for i := range blocks {
		e.sizes = append(e.sizes, int64(blocks[i].Graph.M()+1)*int64(len(blocks[i].Kernel)+1))
	}
	return e.inner.AnalyzeBlocks(blocks, combos)
}

func TestLPTDispatchesHeaviestFirst(t *testing.T) {
	g := gen.HolmeKim(800, 5, 0.7, 31)
	tr := &trackingExecutor{}
	if _, err := FindMaxCliques(g, Options{BlockRatio: 0.4, Schedule: ScheduleLPT, Executor: tr}); err != nil {
		t.Fatal(err)
	}
	if len(tr.sizes) < 3 {
		t.Skip("too few blocks to check ordering")
	}
	// Level-0 batch comes first; check its prefix is non-increasing until
	// the next level resets. Simply assert the very first block is the
	// global maximum of the first batch by scanning until a rise, which
	// must only happen at a level boundary (small tail batches).
	first := tr.sizes[0]
	for _, s := range tr.sizes {
		if s > first {
			// A later level may contain bigger blocks only if the hub
			// subgraph is denser than any level-0 block — not possible
			// since level-0 includes all of it as borders? Keep the check
			// conservative: the first dispatched block must be at least
			// the median size.
			break
		}
	}
	max0 := tr.sizes[0]
	above := 0
	for _, s := range tr.sizes {
		if s > max0 {
			above++
		}
	}
	if above > len(tr.sizes)/2 {
		t.Fatalf("first dispatched block is not among the heaviest: %v", tr.sizes[:5])
	}
}

func TestOnLevelProgressHook(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 45)
	var seen []LevelStats
	res, err := FindMaxCliques(g, Options{
		BlockRatio: 0.2,
		OnLevel:    func(ls LevelStats) { seen = append(seen, ls) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The hook fires once per non-fallback level, in order.
	want := 0
	for _, ls := range res.Stats.Levels {
		if ls.Blocks > 0 {
			want++
		}
	}
	if len(seen) != want {
		t.Fatalf("hook fired %d times, want %d", len(seen), want)
	}
	if seen[0].Nodes != g.N() {
		t.Fatalf("first hook nodes = %d, want %d", seen[0].Nodes, g.N())
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Nodes >= seen[i-1].Nodes {
			t.Fatalf("levels not shrinking: %d then %d nodes", seen[i-1].Nodes, seen[i].Nodes)
		}
	}

	// The streaming engine honours the same hook.
	var streamed int
	_, err = Stream(g, Options{
		BlockRatio: 0.2,
		OnLevel:    func(LevelStats) { streamed++ },
	}, func([]int32, int) {})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != want {
		t.Fatalf("stream hook fired %d times, want %d", streamed, want)
	}
}

// failingExecutor returns an error on every batch.
type failingExecutor struct{}

func (failingExecutor) AnalyzeBlocks([]decomp.Block, []mcealg.Combo) ([][][]int32, error) {
	return nil, fmt.Errorf("synthetic executor failure")
}

func TestExecutorErrorPropagates(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.2, 6)
	if _, err := FindMaxCliques(g, Options{Executor: failingExecutor{}}); err == nil {
		t.Fatal("batch engine swallowed executor failure")
	}
	if _, err := Stream(g, Options{Executor: failingExecutor{}}, func([]int32, int) {}); err == nil {
		t.Fatal("stream engine swallowed executor failure")
	}
}
