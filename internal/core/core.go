// Package core orchestrates FIND-MAX-CLIQUES (paper Algorithm 1), the
// recursive two-level decomposition that enumerates every maximal clique of
// a network while keeping each unit of work inside a block of at most m
// nodes:
//
//  1. CUT splits the nodes into feasible and hub nodes (first level);
//  2. BLOCKS partitions the feasible nodes into dense blocks (second level);
//  3. BLOCK-ANALYSIS enumerates each block's cliques with the combo chosen
//     by the decision tree, in parallel or on a remote cluster (Executor);
//  4. the whole procedure recurses on the subgraph induced by the hubs;
//  5. hub-side cliques contained in feasible-side cliques are filtered out
//     (Lemma 1), making the union exactly the maximal cliques of the input.
//
// Theorem 1 guarantees the recursion empties whenever m exceeds the
// network's degeneracy; for smaller m the recursion can stall on the
// (m+1)-core, in which case the engine enumerates that terminal core
// directly (recorded in Stats.CoreFallback) so completeness is never lost.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mce/internal/bitset"
	"mce/internal/decomp"
	"mce/internal/dtree"
	"mce/internal/filter"
	"mce/internal/graph"
	"mce/internal/kcore"
	"mce/internal/mcealg"
	"mce/internal/resguard"
	"mce/internal/runlog"
	"mce/internal/telemetry"
)

// Executor runs BLOCK-ANALYSIS for a batch of blocks. combos[i] is the
// data-structure/algorithm combination chosen for blocks[i]; the return
// value holds the cliques of each block (global node IDs), indexed like
// blocks. Implementations: LocalExecutor (in-process pool) and
// cluster.Client (TCP workers).
type Executor interface {
	AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error)
}

// ContextExecutor is implemented by executors that support cancelling an
// in-flight block batch. FindMaxCliquesContext uses it when available, so
// a caller's cancellation reaches work already shipped to remote workers
// instead of only taking effect between batches. Both LocalExecutor and
// cluster.Client implement it.
type ContextExecutor interface {
	AnalyzeBlocksContext(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error)
}

// CheckpointExecutor is implemented by executors that can report per-block
// progress while a batch runs: ids[i] is blocks[i]'s stable identity in the
// run plan, and obs is told the moment each block is dispatched and the
// moment its result is complete. A checkpointing run (Options.Checkpoint)
// prefers this path, so a coordinator killed mid-batch loses at most the
// blocks still in flight; executors without it fall back to journaling at
// batch granularity. Both LocalExecutor and cluster.Client implement it.
type CheckpointExecutor interface {
	AnalyzeBlocksCheckpoint(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error)
}

// Options configures FindMaxCliques.
type Options struct {
	// BlockSize is m, the maximum number of nodes per block. If 0, it is
	// derived from BlockRatio.
	BlockSize int
	// BlockRatio sets m = ceil(ratio × max degree) when BlockSize is 0,
	// matching the m/d parameterisation of the paper's experiments
	// (§6.2 uses ratios 0.9 … 0.1). If both are 0, ratio 0.5 is used —
	// the saddle point the paper identifies in Figure 8.
	BlockRatio float64
	// Tree is the algorithm-selection decision tree; nil means the
	// reconstruction of the paper's Figure 3 (dtree.Published).
	Tree *dtree.Tree
	// FixedCombo, when non-nil, bypasses the decision tree and uses one
	// combo everywhere (the paper's fixed-combination baselines, Figure 4).
	FixedCombo *mcealg.Combo
	// Block tunes the greedy second-level decomposition.
	Block decomp.Options
	// Executor runs block batches; nil means a LocalExecutor with
	// Parallelism workers.
	Executor Executor
	// Parallelism is the local worker count when Executor is nil;
	// 0 means GOMAXPROCS.
	Parallelism int
	// IntraBlockParallelism is the work-stealing worker count inside a
	// single block's enumeration (and the terminal core's): when > 1, the
	// combo selector upgrades BitSets picks on large blocks to
	// BitSetsParallel, so one dense block no longer serializes a run. It
	// multiplies with Parallelism (each block worker spawns its own pool),
	// so the useful product is about GOMAXPROCS. Output — cliques and their
	// order — is identical at every setting; 0 or 1 keeps the sequential
	// recursion.
	IntraBlockParallelism int
	// MaxLevels caps the recursion depth as a safety net; 0 means no cap.
	// The cap triggers the same direct-core fallback as a stalled
	// recursion, so results stay complete.
	MaxLevels int
	// UseExtensionFilter swaps the Lemma 1 containment filter (the paper's
	// filter(Ch, Cf), which needs only the clique families) for the
	// equivalent extension test against the graph: a hub clique is dropped
	// iff some feasible node neighbours all its members. Output is
	// identical; the extension test is usually faster when Cf is large.
	UseExtensionFilter bool
	// Schedule orders the blocks before dispatch; see the Schedule
	// constants. Results are identical either way.
	Schedule Schedule
	// OnLevel, when non-nil, is invoked after each recursion level's block
	// analysis completes, with that level's statistics — a progress hook
	// for long runs. It must not block for long and must not call back
	// into the engine.
	OnLevel func(LevelStats)
	// Metrics, when non-nil, receives live telemetry from every phase of
	// the run (blocks, combo picks, per-block timings, filter time, and —
	// through the executor — queue depth and algorithm counters). Nil
	// disables telemetry entirely: every instrumentation site is behind a
	// nil-check and the block-analysis hot loop allocates nothing extra.
	Metrics *telemetry.Engine
	// Checkpoint, when non-nil, makes the run crash-safe: every level's
	// block plan and every block completion is journaled, block results are
	// persisted in per-block segments, and a run restarted against the same
	// checkpoint directory loads completed blocks from disk instead of
	// re-analysing them. The checkpoint must have been opened with the
	// identity CheckpointIdentity reports for this (graph, options) pair.
	Checkpoint *runlog.Checkpoint
	// MemoryBudget is a heap budget in bytes for the local executor (when
	// Executor is nil): while the process heap is above it, block dispatch
	// pauses instead of buffering more results toward an OOM kill. One
	// block always stays in flight, so the run degrades to serial
	// execution, never deadlocks. 0 disables the guard.
	MemoryBudget int64
}

// Schedule selects the block dispatch order handed to the Executor.
type Schedule uint8

const (
	// ScheduleFIFO dispatches blocks in construction order.
	ScheduleFIFO Schedule = iota
	// ScheduleLPT dispatches the estimated-heaviest blocks first
	// (longest-processing-time), so a skewed block cannot strand a lone
	// worker at the end of the batch — the parallel-skew issue the
	// distributed MCE literature highlights ([38] in the paper).
	ScheduleLPT
)

// LevelStats records one recursion level of the first-level decomposition.
type LevelStats struct {
	// Nodes and Edges describe the graph at this level.
	Nodes, Edges int
	// Feasible and Hubs count the CUT partition at this level.
	Feasible, Hubs int
	// Blocks is the number of second-level blocks.
	Blocks int
	// Kernel, Border and Visited sum the three node classes of Algorithm 3
	// across this level's blocks. Kernel always equals Feasible (every
	// feasible node is kernel in exactly one block); Border and Visited
	// measure the duplication the bounded-size decomposition pays.
	Kernel, Border, Visited int
	// Cliques counts the cliques found from this level's blocks (before
	// higher levels' results are filtered against lower ones).
	Cliques int
	// Decomp and Analysis measure the wall time of the two phases.
	Decomp, Analysis time.Duration
}

// Stats aggregates a FindMaxCliques run.
type Stats struct {
	// BlockSize is the m actually used.
	BlockSize int
	// MaxDegree is the input graph's maximum degree (the d of m/d).
	MaxDegree int
	// Levels holds one entry per recursion level, outermost first. Its
	// length is the paper's "number of iterations of the first-level
	// decomposition".
	Levels []LevelStats
	// FilterTime is the total time spent in the Lemma 1 filter.
	FilterTime time.Duration
	// CoreFallback reports that the recursion stopped making progress (or
	// hit MaxLevels) and the terminal core was enumerated directly.
	CoreFallback bool
	// TotalCliques is the number of maximal cliques returned.
	TotalCliques int
	// HubCliques is the number of returned cliques that were discovered at
	// recursion level ≥ 1, i.e. cliques made of hub nodes only — the
	// cliques a hub-neglecting decomposition would lose (Figures 9–11).
	HubCliques int
	// ResumedBlocks counts blocks whose cliques were loaded from the
	// checkpoint's segments instead of re-analysed — non-zero only when the
	// run resumed prior state (Options.Checkpoint).
	ResumedBlocks int
	// SkippedBlocks counts blocks abandoned as poison tasks under
	// skip-poison mode (cluster.ClientOptions.SkipPoisonTasks). Non-zero
	// means the clique set is explicitly incomplete; callers must surface
	// it, and mcefind exits non-zero.
	SkippedBlocks int
	// CheckpointDegraded reports that a checkpoint write failure (e.g. a
	// full disk) disabled checkpointing mid-run: the results are complete
	// and correct, but the journal records only the prefix written before
	// the failure, so a crash would resume from there.
	CheckpointDegraded bool
	// Telemetry is the final metrics snapshot of the run when it was
	// started with a telemetry engine (Options.Metrics, or the mce
	// package's WithTelemetry/WithProgress options); nil otherwise.
	Telemetry *telemetry.Snapshot
}

// Result is the outcome of FindMaxCliques.
type Result struct {
	// Cliques holds every maximal clique of the input graph, each sorted
	// ascending, in deterministic order.
	Cliques [][]int32
	// Level[i] is the recursion depth at which Cliques[i] was found:
	// 0 for cliques containing a feasible node of the original graph,
	// k ≥ 1 for cliques found k levels into the hub recursion (all their
	// nodes are hubs at levels 0..k-1).
	Level []int
	// Stats describes the run.
	Stats Stats
}

// LocalExecutor runs block analyses on a bounded in-process worker pool.
type LocalExecutor struct {
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// Metrics, when non-nil, receives per-block telemetry: queue depth,
	// per-combo timings and the merged mcealg recursion counters. Nil
	// keeps the worker loop allocation-free.
	Metrics *telemetry.Engine
	// MemoryBudget is a heap budget in bytes: while the process heap is
	// above it, workers pause before starting the next block instead of
	// accumulating more results toward an OOM kill (one worker is always
	// admitted, so progress is guaranteed). 0 disables the guard.
	MemoryBudget int64
	// IntraBlockParallelism is the per-block work-stealing width handed to
	// mcealg for BitSetsParallel combos; see Options.IntraBlockParallelism.
	// The pool's split gate is wired to the executor's memory guard, so
	// stealable-subproblem growth pauses with the same budget that paces
	// block dispatch.
	IntraBlockParallelism int
}

// AnalyzeBlocks implements Executor.
func (e *LocalExecutor) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return e.AnalyzeBlocksContext(context.Background(), blocks, combos)
}

// AnalyzeBlocksContext implements ContextExecutor: cancellation stops the
// pool from starting new blocks (blocks already being analysed run to
// completion — block analysis has no preemption points) and the call
// returns ctx.Err().
func (e *LocalExecutor) AnalyzeBlocksContext(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return e.analyze(ctx, blocks, combos, nil, nil)
}

// AnalyzeBlocksCheckpoint implements CheckpointExecutor: each block's
// completion is reported to obs as it happens, so a checkpointing run can
// make it durable before the batch finishes.
func (e *LocalExecutor) AnalyzeBlocksCheckpoint(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	if len(ids) != len(blocks) {
		return nil, fmt.Errorf("core: %d blocks but %d block IDs", len(blocks), len(ids))
	}
	return e.analyze(ctx, blocks, combos, ids, obs)
}

// analyze is the pool shared by both executor shapes; ids/obs are nil for
// plain batches.
//
//mce:hotpath block-analysis worker pool
func (e *LocalExecutor) analyze(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	if len(blocks) != len(combos) {
		return nil, arityMismatch(len(blocks), len(combos))
	}
	workers := e.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	out := make([][][]int32, len(blocks))
	if len(blocks) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup //lint:ignore hotbox captured once per spawned worker, not per recursion node
		mu       sync.Mutex     //lint:ignore hotbox captured once per spawned worker, not per recursion node
		firstErr error
	)
	met := e.Metrics
	if met != nil {
		met.QueueDepth.Add(int64(len(blocks)))
	}
	guard := resguard.New(e.MemoryBudget, met)
	// Intra-block pools split subtrees into heap-held tasks; gating the
	// splits on the same guard keeps deque growth inside the budget. The
	// method value is safe on a nil guard (unlimited budget → never over).
	par := mcealg.Par{Workers: e.IntraBlockParallelism, SplitGate: guard.OverBudget}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// ins is per-worker scratch: the recursion counts accumulate
			// without atomics and merge into the engine once per block.
			var ins *telemetry.BlockInstr
			if met != nil {
				ins = &telemetry.BlockInstr{}
			}
			for i := range next {
				if met != nil {
					met.QueueDepth.Add(-1)
				}
				if ctx.Err() != nil {
					continue // drain the queue without analysing
				}
				// Memory guard: over budget, workers pause here instead of
				// piling more clique sets into the heap. ctx cancellation
				// releases the wait (the loop then drains without analysing).
				guard.Enter(ctx.Done())
				if ctx.Err() != nil {
					guard.Exit()
					continue
				}
				if obs != nil {
					obs.BlockDispatched(ids[i])
				}
				var t0 time.Time
				if met != nil {
					met.TasksInFlight.Add(1)
					t0 = time.Now()
				}
				var cliques [][]int32 //lint:ignore hotbox the emit sink must outlive the callback; captured once per block, not per node
				err := decomp.AnalyzeBlockPar(&blocks[i], combos[i], func(c []int32) {
					cp := make([]int32, len(c))
					copy(cp, c)
					cliques = append(cliques, cp)
				}, ins, par)
				if met != nil {
					idx := combos[i].Index()
					met.ComboAnalyzed(idx, combos[i].Label(), time.Since(t0))
					met.MergeBlockInstr(ins)
					met.TasksInFlight.Add(-1)
				}
				if err == nil && obs != nil {
					// Durability before acknowledgement: the block only
					// counts once its cliques are journaled.
					err = obs.BlockDone(ids[i], cliques)
				}
				guard.Exit()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = cliques
			}
		}()
	}
	for i := range blocks {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// arityMismatch formats the blocks/combos length error of analyze. It is a
// separate function so the fmt machinery stays off the hot path: analyze is
// a hot-path root and the mismatch fires at most once per batch.
//
//mce:coldpath error formatting, at most once per batch
func arityMismatch(blocks, combos int) error {
	return fmt.Errorf("core: %d blocks but %d combos", blocks, combos)
}

// ErrNoNodes is returned for a graph with no nodes at all; the empty graph
// has no maximal cliques, but asking is almost always a caller bug.
var ErrNoNodes = errors.New("core: graph has no nodes")

// errCheckpointStream refuses checkpointed streaming; see StreamContext.
var errCheckpointStream = errors.New("core: checkpointing is not supported with streaming enumeration (a resume would re-emit cliques the consumer already saw); use FindMaxCliques or drop the checkpoint")

// FindMaxCliques enumerates every maximal clique of g — Algorithm 1.
func FindMaxCliques(g *graph.Graph, opts Options) (*Result, error) {
	return FindMaxCliquesContext(context.Background(), g, opts)
}

// FindMaxCliquesContext is FindMaxCliques with cancellation: ctx is
// checked between recursion levels and handed to the executor's
// ContextExecutor path when it has one, so cancelling stops an in-flight
// distributed run rather than waiting for the current batch to finish.
func FindMaxCliquesContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if g.N() == 0 {
		return nil, ErrNoNodes
	}
	maxDeg := g.MaxDegree()
	m := resolveBlockSize(maxDeg, opts)
	sel := selector(opts)
	exec := opts.Executor
	if exec == nil {
		exec = &LocalExecutor{Parallelism: opts.Parallelism, Metrics: opts.Metrics, MemoryBudget: opts.MemoryBudget, IntraBlockParallelism: opts.IntraBlockParallelism}
	}

	res := &Result{Stats: Stats{BlockSize: m, MaxDegree: maxDeg}}
	if err := findRecursive(ctx, g, m, sel, exec, opts, res, 0); err != nil {
		return nil, err
	}
	if cp := opts.Checkpoint; cp != nil {
		if err := cp.FinishRun(); err != nil {
			return nil, err
		}
		res.Stats.ResumedBlocks = int(cp.SkippedBlocks())
		res.Stats.CheckpointDegraded = cp.Degraded()
	}
	res.Stats.TotalCliques = len(res.Cliques)
	for _, lvl := range res.Level {
		if lvl >= 1 {
			res.Stats.HubCliques++
		}
	}
	if opts.Metrics != nil {
		snap := opts.Metrics.Snapshot()
		res.Stats.Telemetry = &snap
	}
	return res, nil
}

// resolveBlockSize resolves m from the options exactly as the engine will
// use it, so the checkpoint identity and the run agree.
func resolveBlockSize(maxDeg int, opts Options) int {
	m := opts.BlockSize
	if m <= 0 {
		ratio := opts.BlockRatio
		if ratio <= 0 {
			ratio = 0.5
		}
		m = int(ratio*float64(maxDeg) + 0.999)
	}
	if m < 2 {
		m = 2
	}
	return m
}

// CheckpointIdentity computes the identity a checkpoint directory for this
// (graph, options) pair must carry: the graph digest plus a digest of every
// option that shapes the block plan or the result partitioning — the
// resolved m, the second-level decomposition tuning, and the recursion cap.
// Transport, scheduling and filtering options are excluded: they change how
// blocks run, never which blocks exist or what each produces.
func CheckpointIdentity(g *graph.Graph, opts Options) runlog.Identity {
	m := resolveBlockSize(g.MaxDegree(), opts)
	minAdj := opts.Block.MinAdjacency
	if minAdj < 1 {
		minAdj = 1
	}
	fields := []uint64{
		uint64(m),
		uint64(minAdj),
		uint64(opts.Block.Order),
		uint64(opts.Block.Seed),
		uint64(opts.MaxLevels),
	}
	return runlog.Identity{
		Graph:   runlog.GraphDigest(g),
		Options: runlog.OptionsDigest(fields...),
	}
}

// parallelMinBlockNodes is the smallest block worth the intra-block pool:
// below it the pool-spawn and merge overhead beats any fan-out gain, so the
// selector leaves small blocks on the sequential BitSets path.
const parallelMinBlockNodes = 128

// selector builds the per-block combo chooser from the options. With
// IntraBlockParallelism > 1 the chosen combo is upgraded from BitSets to
// BitSetsParallel on blocks large enough to amortise the pool (the decision
// tree already steers dense blocks — where the parallel win lives — to
// BitSets). The upgrade never changes the emitted cliques or their order:
// both structures share the same rows and the same pivot arithmetic, and
// the parallel enumerator merges back into depth-first order.
//
//mce:hotpath per-block combo pick
func selector(opts Options) func(*decomp.Block) mcealg.Combo {
	base := baseSelector(opts)
	if opts.IntraBlockParallelism <= 1 {
		return base
	}
	return func(b *decomp.Block) mcealg.Combo {
		c := base(b)
		if c.Struct == mcealg.BitSets && b.Graph.N() >= parallelMinBlockNodes {
			c.Struct = mcealg.BitSetsParallel
		}
		return c
	}
}

//mce:hotpath per-block combo pick (decision tree)
func baseSelector(opts Options) func(*decomp.Block) mcealg.Combo {
	if opts.FixedCombo != nil {
		c := *opts.FixedCombo
		return func(b *decomp.Block) mcealg.Combo {
			if c.Struct == mcealg.Matrix && b.Graph.N() > mcealg.MatrixMaxNodes {
				return mcealg.Combo{Alg: c.Alg, Struct: mcealg.BitSets}
			}
			return c
		}
	}
	tree := opts.Tree
	if tree == nil {
		tree = dtree.Published()
	}
	return func(b *decomp.Block) mcealg.Combo {
		return dtree.SafePredict(tree, kcore.Measure(b.Graph))
	}
}

// findRecursive appends the maximal cliques of g (in the ID space of g,
// translated by the caller) and their discovery levels to res. It implements
// the body of Algorithm 1 at recursion depth level.
func findRecursive(ctx context.Context, g *graph.Graph, m int, sel func(*decomp.Block) mcealg.Combo, exec Executor, opts Options, res *Result, level int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	met := opts.Metrics
	start := time.Now()
	feasible, hubs := decomp.Cut(g, m)

	// Stalled recursion (Theorem 1 precondition violated: every remaining
	// node is a hub, so the induced subgraph equals g) or depth cap: the
	// remaining graph is the terminal (m+1)-core. Enumerate it directly —
	// Lemma 1 still applies with C2 = all maximal cliques of this subgraph.
	if len(feasible) == 0 || (opts.MaxLevels > 0 && level >= opts.MaxLevels && len(hubs) > 0) {
		return enumerateCore(g, sel, opts, res, level, start)
	}

	blocks := decomp.Blocks(g, feasible, m, opts.Block)
	combos := make([]mcealg.Combo, len(blocks))
	var kernelSum, borderSum, visitedSum int
	for i := range blocks {
		combos[i] = sel(&blocks[i])
		kernelSum += len(blocks[i].Kernel)
		borderSum += len(blocks[i].Border)
		visitedSum += len(blocks[i].Visited)
		if met != nil {
			idx := combos[i].Index()
			met.ComboPicked(idx, combos[i].Label())
		}
	}
	if met != nil {
		met.BlocksBuilt.Add(int64(len(blocks)))
		met.KernelNodes.Add(int64(kernelSum))
		met.BorderNodes.Add(int64(borderSum))
		met.VisitedNodes.Add(int64(visitedSum))
	}
	decompTime := time.Since(start)

	start = time.Now()
	var perBlock [][][]int32
	var err error
	if cp := opts.Checkpoint; cp != nil {
		perBlock, err = analyzeCheckpointed(ctx, cp, exec, blocks, combos, opts.Schedule, level)
	} else {
		perBlock, err = analyzeScheduled(ctx, exec, blocks, combos, opts.Schedule, nil, nil)
	}
	if err != nil {
		return err
	}
	cfStart := len(res.Cliques)
	for _, cliques := range perBlock {
		for _, c := range cliques {
			res.Cliques = append(res.Cliques, c)
			res.Level = append(res.Level, level)
		}
	}
	analysisTime := time.Since(start)

	res.Stats.Levels = append(res.Stats.Levels, LevelStats{
		Nodes: g.N(), Edges: g.M(),
		Feasible: len(feasible), Hubs: len(hubs),
		Blocks: len(blocks),
		Kernel: kernelSum, Border: borderSum, Visited: visitedSum,
		Cliques: len(res.Cliques) - cfStart,
		Decomp:  decompTime, Analysis: analysisTime,
	})
	if met != nil {
		met.CliquesFound.Add(int64(len(res.Cliques) - cfStart))
		met.LevelsCompleted.Inc()
	}
	if opts.OnLevel != nil {
		opts.OnLevel(res.Stats.Levels[len(res.Stats.Levels)-1])
	}

	if len(hubs) == 0 {
		return nil
	}

	// Recursive call on the hub-induced subgraph (Algorithm 1, line 6).
	sub, orig := graph.Induced(g, hubs)
	subRes := &Result{}
	if err := findRecursive(ctx, sub, m, sel, exec, opts, subRes, level+1); err != nil {
		return err
	}
	res.Stats.Levels = append(res.Stats.Levels, subRes.Stats.Levels...)
	res.Stats.CoreFallback = res.Stats.CoreFallback || subRes.Stats.CoreFallback
	res.Stats.FilterTime += subRes.Stats.FilterTime

	// Translate hub-side cliques to this level's IDs, then filter against
	// this level's feasible-side cliques (Algorithm 1, line 7; Lemma 1).
	ch := make([][]int32, len(subRes.Cliques))
	for i, c := range subRes.Cliques {
		t := make([]int32, len(c))
		for j, v := range c {
			t[j] = orig[v]
		}
		ch[i] = t // already ascending: orig is ascending and c is ascending
	}
	start = time.Now()
	var drop func(c []int32) bool
	if opts.UseExtensionFilter {
		feasSet := bitset.FromSlice(g.N(), feasible)
		isFeasible := func(v int32) bool { return feasSet.Has(v) }
		drop = func(c []int32) bool { return filter.Extensible(g, c, isFeasible) }
	} else {
		ix := filter.NewIndex(res.Cliques[cfStart:])
		drop = ix.ContainedIn
	}
	dropped := 0
	for i, c := range ch {
		if drop(c) {
			dropped++
			continue
		}
		res.Cliques = append(res.Cliques, c)
		// subRes was built with level+1, so its Level entries are
		// already absolute recursion depths.
		res.Level = append(res.Level, subRes.Level[i])
	}
	res.Stats.FilterTime += time.Since(start)
	if met != nil {
		met.FilterNs.Add(int64(time.Since(start)))
		met.HubCliquesFiltered.Add(int64(dropped))
	}
	return nil
}

// analyzeCheckpointed runs one level's batch against the checkpoint: the
// level's block plan is journaled (and validated against a resumed journal),
// blocks the journal records as done are served from their segments, and
// only the remainder is dispatched — with per-block durability when the
// executor supports it. Results come back indexed like blocks, so resumed
// and fresh runs produce identical output.
func analyzeCheckpointed(ctx context.Context, cp *runlog.Checkpoint, exec Executor, blocks []decomp.Block, combos []mcealg.Combo, sched Schedule, level int) ([][][]int32, error) {
	if err := cp.BeginLevel(level, len(blocks)); err != nil {
		return nil, err
	}
	perBlock := make([][][]int32, len(blocks))
	var pendIdx []int
	for i := range blocks {
		if cliques, ok := cp.DoneCliques(runlog.BlockID{Level: level, Plan: i}); ok {
			perBlock[i] = cliques
			continue
		}
		pendIdx = append(pendIdx, i)
	}
	if len(pendIdx) > 0 {
		pend := make([]decomp.Block, len(pendIdx))
		pendCombos := make([]mcealg.Combo, len(pendIdx))
		ids := make([]runlog.BlockID, len(pendIdx))
		for pos, i := range pendIdx {
			pend[pos] = blocks[i]
			pendCombos[pos] = combos[i]
			ids[pos] = runlog.BlockID{Level: level, Plan: i}
		}
		results, err := analyzeScheduled(ctx, exec, pend, pendCombos, sched, ids, cp)
		if err != nil {
			return nil, err
		}
		for pos, i := range pendIdx {
			perBlock[i] = results[pos]
		}
	}
	if err := cp.EndLevel(level); err != nil {
		return nil, err
	}
	return perBlock, nil
}

// analyzeScheduled dispatches the blocks in the configured order and
// returns the results in the original block order, so scheduling never
// changes the output. The context reaches the executor when it implements
// ContextExecutor; otherwise it is checked once before dispatch. When
// obs is non-nil (checkpointing run), ids index like blocks and block
// completions are reported — per block through a CheckpointExecutor, or at
// batch granularity for executors without one.
func analyzeScheduled(ctx context.Context, exec Executor, blocks []decomp.Block, combos []mcealg.Combo, sched Schedule, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plain := func(b []decomp.Block, cb []mcealg.Combo) ([][][]int32, error) {
		if ce, ok := exec.(ContextExecutor); ok {
			return ce.AnalyzeBlocksContext(ctx, b, cb)
		}
		return exec.AnalyzeBlocks(b, cb)
	}
	analyze := func(b []decomp.Block, cb []mcealg.Combo, bids []runlog.BlockID) ([][][]int32, error) {
		if obs == nil {
			return plain(b, cb)
		}
		if ce, ok := exec.(CheckpointExecutor); ok {
			return ce.AnalyzeBlocksCheckpoint(ctx, b, cb, bids, obs)
		}
		// Batch-granularity fallback: the journal still records every
		// completion, just only after the whole batch returns — a crash
		// mid-batch re-runs the batch, which the idempotent segments make
		// safe.
		for _, id := range bids {
			obs.BlockDispatched(id)
		}
		out, err := plain(b, cb)
		if err != nil {
			return nil, err
		}
		for i, id := range bids {
			if err := obs.BlockDone(id, out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if sched != ScheduleLPT || len(blocks) < 2 {
		return analyze(blocks, combos, ids)
	}
	perm := make([]int, len(blocks))
	for i := range perm {
		perm[i] = i
	}
	// Cost estimate: block analysis is roughly linear in the per-kernel
	// neighbourhood work, which edges × kernels tracks well enough for
	// ordering purposes.
	cost := func(b *decomp.Block) int64 {
		return int64(b.Graph.M()+1) * int64(len(b.Kernel)+1)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return cost(&blocks[perm[a]]) > cost(&blocks[perm[b]])
	})
	ordered := make([]decomp.Block, len(blocks))
	orderedCombos := make([]mcealg.Combo, len(blocks))
	var orderedIDs []runlog.BlockID
	if ids != nil {
		orderedIDs = make([]runlog.BlockID, len(blocks))
	}
	for pos, idx := range perm {
		ordered[pos] = blocks[idx]
		orderedCombos[pos] = combos[idx]
		if ids != nil {
			orderedIDs[pos] = ids[idx]
		}
	}
	permuted, err := analyze(ordered, orderedCombos, orderedIDs)
	if err != nil {
		return nil, err
	}
	out := make([][][]int32, len(blocks))
	for pos, idx := range perm {
		out[idx] = permuted[pos]
	}
	return out, nil
}

// enumerateCore handles the terminal core directly with a single MCE run.
// Under a checkpoint it is journaled as a one-block level, so a resumed run
// loads the terminal core's cliques from its segment too. This is exactly
// where intra-block parallelism matters most: the terminal hub core is one
// dense enumeration with no block-level parallelism to hide behind.
func enumerateCore(g *graph.Graph, sel func(*decomp.Block) mcealg.Combo, opts Options, res *Result, level int, start time.Time) error {
	cp, met := opts.Checkpoint, opts.Metrics
	id := runlog.BlockID{Level: level, Plan: 0}
	if cp != nil {
		if err := cp.BeginLevel(level, 1); err != nil {
			return err
		}
		if cliques, ok := cp.DoneCliques(id); ok {
			res.Cliques = append(res.Cliques, cliques...)
			for range cliques {
				res.Level = append(res.Level, level)
			}
			res.Stats.CoreFallback = true
			res.Stats.Levels = append(res.Stats.Levels, LevelStats{
				Nodes: g.N(), Edges: g.M(), Hubs: g.N(),
				Cliques: len(cliques), Analysis: time.Since(start),
			})
			if met != nil {
				met.LevelsCompleted.Inc()
			}
			return cp.EndLevel(level)
		}
	}
	blk := wholeGraphBlock(g)
	combo := sel(blk)
	if met != nil {
		met.ComboPicked(combo.Index(), combo.Label())
	}
	n := 0
	first := len(res.Cliques)
	err := mcealg.EnumeratePar(g, combo, corePar(opts), func(c []int32) {
		dup := make([]int32, len(c))
		copy(dup, c)
		res.Cliques = append(res.Cliques, dup)
		res.Level = append(res.Level, level)
		n++
	})
	if err != nil {
		return err
	}
	if cp != nil {
		if err := cp.BlockDone(id, res.Cliques[first:]); err != nil {
			return err
		}
		if err := cp.EndLevel(level); err != nil {
			return err
		}
	}
	res.Stats.CoreFallback = true
	res.Stats.Levels = append(res.Stats.Levels, LevelStats{
		Nodes: g.N(), Edges: g.M(), Hubs: g.N(),
		Cliques: n, Analysis: time.Since(start),
	})
	if met != nil {
		met.CliquesFound.Add(int64(n))
		met.LevelsCompleted.Inc()
	}
	return nil
}

// corePar is the Par for the terminal-core fallback, which runs on the
// coordinator goroutine rather than inside an executor: same worker width,
// with the split gate on a guard over the run's memory budget.
func corePar(opts Options) mcealg.Par {
	guard := resguard.New(opts.MemoryBudget, opts.Metrics)
	return mcealg.Par{Workers: opts.IntraBlockParallelism, SplitGate: guard.OverBudget}
}

// wholeGraphBlock wraps g as a single all-kernel block so combo selectors
// can inspect it uniformly.
func wholeGraphBlock(g *graph.Graph) *decomp.Block {
	kernel := make([]int32, g.N())
	orig := make([]int32, g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		kernel[v] = v
		orig[v] = v
	}
	return &decomp.Block{Graph: g, Orig: orig, Kernel: kernel}
}
