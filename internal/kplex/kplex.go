// Package kplex enumerates maximal k-plexes, the relaxed community model
// the paper names first among its future-work targets (§8; see also
// Berlowitz, Cohen and Kimelfeld [5] and McClosky and Hicks [26]).
//
// A k-plex is a node set S in which every member misses at most k members:
// deg_S(v) ≥ |S| − k for all v ∈ S. A 1-plex is a clique, so the enumerator
// degenerates to maximal clique enumeration at k = 1 (tested against the
// MCE oracle).
//
// Because any k pairwise non-adjacent nodes form a (degenerate) k-plex, the
// raw family explodes on sparse graphs; following standard practice the
// enumerator reports only k-plexes of at least MinSize nodes, and a k-plex
// with |S| ≥ 2k − 1 is automatically connected, so MinSize defaults to that
// bound.
package kplex

import (
	"fmt"
	"sort"

	"mce/internal/graph"
)

// Options tunes the enumeration.
type Options struct {
	// K is the plex parameter: each member may miss up to K members
	// (including itself, per the classic definition). K ≥ 1.
	K int
	// MinSize is the smallest k-plex to report; 0 means max(2K−1, 1), the
	// connectivity threshold.
	MinSize int
	// MaxResults stops the enumeration after this many k-plexes; 0 means
	// unbounded. Use it as a safety valve on dense graphs.
	MaxResults int
}

// Enumerate calls emit for every maximal k-plex of g with at least
// opts.MinSize nodes, members ascending. Maximality is with respect to all
// k-plexes (a reported set cannot be extended by any node), not only the
// reported ones. The emitted slice is reused between calls.
func Enumerate(g *graph.Graph, opts Options, emit func(plex []int32)) error {
	if opts.K < 1 {
		return fmt.Errorf("kplex: K = %d, want ≥ 1", opts.K)
	}
	minSize := opts.MinSize
	if minSize <= 0 {
		minSize = 2*opts.K - 1
		if minSize < 1 {
			minSize = 1
		}
	}
	e := &enumerator{
		g:       g,
		k:       opts.K,
		minSize: minSize,
		max:     opts.MaxResults,
		emit:    emit,
		inS:     make([]bool, g.N()),
		missing: make([]int32, g.N()),
	}
	n := int32(g.N())
	cand := make([]int32, 0, n)
	for v := int32(0); v < n; v++ {
		cand = append(cand, v)
	}
	e.expand(nil, cand, nil)
	return nil
}

// Collect gathers the maximal k-plexes into a slice.
func Collect(g *graph.Graph, opts Options) ([][]int32, error) {
	var out [][]int32
	err := Enumerate(g, opts, func(p []int32) {
		cp := make([]int32, len(p))
		copy(cp, p)
		out = append(out, cp)
	})
	return out, err
}

type enumerator struct {
	g       *graph.Graph
	k       int
	minSize int
	max     int
	count   int
	emit    func([]int32)

	inS     []bool  // membership of the current S
	missing []int32 // missing[v] = |S| − deg_S(v) for v ∈ S; scratch for candidates
}

// canAdd reports whether S ∪ {v} is still a k-plex, given |S| = size.
// missing[w] for w ∈ S counts w's non-neighbours within S, itself included.
func (e *enumerator) canAdd(S []int32, v int32) bool {
	// v's own deficiency in S ∪ {v}: itself plus non-neighbours in S.
	missV := int32(1)
	for _, w := range S {
		if !e.g.HasEdge(v, w) {
			missV++
			if int(missV) > e.k {
				return false
			}
		}
	}
	// Existing members' deficiencies grow by one for each non-neighbour.
	for _, w := range S {
		if !e.g.HasEdge(v, w) && int(e.missing[w])+1 > e.k {
			return false
		}
	}
	return true
}

// add pushes v into S, updating deficiencies; returns v's deficiency.
func (e *enumerator) add(S []int32, v int32) int32 {
	missV := int32(1)
	for _, w := range S {
		if !e.g.HasEdge(v, w) {
			missV++
			e.missing[w]++
		}
	}
	e.missing[v] = missV
	e.inS[v] = true
	return missV
}

// drop undoes add.
func (e *enumerator) drop(S []int32, v int32) {
	for _, w := range S {
		if !e.g.HasEdge(v, w) {
			e.missing[w]--
		}
	}
	e.inS[v] = false
}

// expand is a set-enumeration search: S is the current k-plex, cand the
// nodes that may still join, excl the processed nodes (any of which joining
// would re-create an already-explored branch). k-plexes are hereditary, so
// filtering cand/excl by canAdd is sound.
func (e *enumerator) expand(S, cand, excl []int32) {
	if e.max > 0 && e.count >= e.max {
		return
	}
	if len(cand) == 0 {
		if len(S) >= e.minSize && len(excl) == 0 {
			e.count++
			out := make([]int32, len(S))
			copy(out, S)
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			e.emit(out)
		}
		return
	}
	// Prune: even taking every candidate cannot reach minSize.
	if len(S)+len(cand) < e.minSize {
		return
	}
	for i, v := range cand {
		if e.max > 0 && e.count >= e.max {
			return
		}
		e.add(S, v)
		S2 := append(S, v)
		var cand2, excl2 []int32
		for _, u := range cand[i+1:] {
			if e.canAdd(S2, u) {
				cand2 = append(cand2, u)
			}
		}
		for _, u := range excl {
			if e.canAdd(S2, u) {
				excl2 = append(excl2, u)
			}
		}
		// Nodes skipped earlier in this loop also become exclusions.
		for _, u := range cand[:i] {
			if e.canAdd(S2, u) {
				excl2 = append(excl2, u)
			}
		}
		e.expand(S2, cand2, excl2)
		e.drop(S, v)
	}
}
