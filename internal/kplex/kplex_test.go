package kplex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// isKPlex checks the definition directly.
func isKPlex(g *graph.Graph, s []int32, k int) bool {
	for _, v := range s {
		deg := 0
		for _, w := range s {
			if w != v && g.HasEdge(v, w) {
				deg++
			}
		}
		if deg < len(s)-k {
			return false
		}
	}
	return true
}

// bruteForce enumerates maximal k-plexes of size ≥ minSize by subset scan
// (n ≤ 16 only). Maximality is w.r.t. all k-plexes.
func bruteForce(g *graph.Graph, k, minSize int) [][]int32 {
	n := g.N()
	var plexes []uint32
	for mask := uint32(1); mask < 1<<n; mask++ {
		var s []int32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				s = append(s, int32(v))
			}
		}
		if isKPlex(g, s, k) {
			plexes = append(plexes, mask)
		}
	}
	var out [][]int32
	for _, m := range plexes {
		maximal := true
		for _, m2 := range plexes {
			if m != m2 && m&m2 == m {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		var s []int32
		for v := 0; v < n; v++ {
			if m&(1<<v) != 0 {
				s = append(s, int32(v))
			}
		}
		if len(s) >= minSize {
			out = append(out, s)
		}
	}
	return out
}

func assertSame(t *testing.T, what string, got, want [][]int32) {
	t.Helper()
	gm := map[string]bool{}
	for _, p := range got {
		if gm[key(p)] {
			t.Fatalf("%s: duplicate %v", what, p)
		}
		gm[key(p)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d plexes, want %d\n got: %v\nwant: %v", what, len(got), len(want), got, want)
	}
	for _, p := range want {
		if !gm[key(p)] {
			t.Fatalf("%s: missing %v", what, p)
		}
	}
}

func TestInvalidK(t *testing.T) {
	if err := Enumerate(graph.Empty(2), Options{K: 0}, func([]int32) {}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestK1EqualsMaximalCliques(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.2, 7)
	got, err := Collect(g, Options{K: 1, MinSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := mcealg.ReferenceCollect(g)
	assertSame(t, "k=1", got, want)
}

func TestK2OnPath(t *testing.T) {
	// Path 0-1-2: every member misses at most one other → whole path is a
	// 2-plex; it is the unique maximal one of size ≥ 3.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	got, err := Collect(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "path", got, [][]int32{{0, 1, 2}})
}

func TestK2OnCycle4(t *testing.T) {
	// C4 is a 2-plex of size 4 (each node misses exactly one).
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	got, err := Collect(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "C4", got, [][]int32{{0, 1, 2, 3}})
}

func TestCliqueMinusEdge(t *testing.T) {
	// K5 minus one edge: still a 2-plex of size 5.
	b := graph.NewBuilder(5)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if !(u == 0 && v == 1) {
				b.AddEdge(u, v)
			}
		}
	}
	got, err := Collect(b.Build(), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "K5-e", got, [][]int32{{0, 1, 2, 3, 4}})
}

func TestMinSizeFilters(t *testing.T) {
	// Two triangles joined by a bridge; with K=1, MinSize=3 only the
	// triangles qualify (edges and the bridge are size-2 cliques).
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	})
	got, err := Collect(g, Options{K: 1, MinSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "minsize", got, [][]int32{{0, 1, 2}, {3, 4, 5}})
}

func TestMaxResultsStopsEarly(t *testing.T) {
	g := gen.ErdosRenyi(30, 0.3, 3)
	var n int
	err := Enumerate(g, Options{K: 2, MaxResults: 5}, func([]int32) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("emitted %d plexes, want exactly 5", n)
	}
}

func TestEmittedAreMaximalKPlexes(t *testing.T) {
	g := gen.HolmeKim(60, 4, 0.6, 11)
	k := 2
	got, err := Collect(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no 2-plexes found on a clustered graph")
	}
	for _, s := range got {
		if !isKPlex(g, s, k) {
			t.Fatalf("emitted non-k-plex %v", s)
		}
		// No extender.
		for v := int32(0); v < int32(g.N()); v++ {
			in := false
			for _, w := range s {
				if w == v {
					in = true
					break
				}
			}
			if in {
				continue
			}
			if isKPlex(g, append(append([]int32{}, s...), v), k) {
				t.Fatalf("plex %v extensible by %d", s, v)
			}
		}
	}
}

// Property: the enumerator matches subset brute force on tiny graphs for
// k ∈ {1, 2, 3}.
func TestQuickMatchesBruteForce(t *testing.T) {
	f := func(seed int64, kPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		k := int(kPick%3) + 1
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
		g := b.Build()
		minSize := 2*k - 1
		got, err := Collect(g, Options{K: k, MinSize: minSize})
		if err != nil {
			return false
		}
		want := bruteForce(g, k, minSize)
		if len(got) != len(want) {
			return false
		}
		gm := map[string]bool{}
		for _, p := range got {
			gm[key(p)] = true
		}
		for _, p := range want {
			if !gm[key(p)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every clique of size ≥ minSize is inside some reported k-plex
// (cliques are k-plexes, so maximal plexes cover them).
func TestQuickCliquesCovered(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(20, 0.25, seed)
		plexes, err := Collect(g, Options{K: 2})
		if err != nil {
			return false
		}
		ok := true
		mcealg.ReferenceEnumerate(g, func(c []int32) {
			if len(c) < 3 {
				return
			}
			covered := false
			for _, p := range plexes {
				if subset(c, p) {
					covered = true
					break
				}
			}
			if !covered {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func subset(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

func BenchmarkKPlex(b *testing.B) {
	g := gen.HolmeKim(120, 4, 0.6, 9)
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				if err := Enumerate(g, Options{K: k}, func([]int32) { n++ }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
