// Out-of-core enumeration: store a network's adjacency on disk, keep only
// O(N) memory resident, and stream its maximal cliques into a compact
// binary store — the "network exceeds main memory" regime that motivates
// the paper's distributed decomposition.
//
// Run with:
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mce"
)

func main() {
	dir, err := os.MkdirTemp("", "mce-outofcore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A network big enough to be interesting; on a real deployment this
	// would be far larger than RAM.
	g := mce.GenerateSocialNetwork(20000, 6, 0.7, 4)
	graphPath := filepath.Join(dir, "network.mceg")
	if err := mce.SaveDiskGraph(graphPath, g); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(graphPath)
	fmt.Printf("network: %d nodes, %d edges — %d KiB on disk\n",
		g.N(), g.M(), st.Size()/1024)

	// Enumerate straight from disk, then persist into the compact store.
	cliquePath := filepath.Join(dir, "cliques.mce")
	var cliques [][]int32
	t0 := time.Now()
	stats, err := mce.EnumerateOutOfCore(graphPath, func(c []int32, _ int) {
		cp := make([]int32, len(c))
		copy(cp, c)
		cliques = append(cliques, cp)
	}, mce.WithBlockRatio(0.3))
	if err != nil {
		log.Fatal(err)
	}
	if err := mce.SaveCliques(cliquePath, cliques); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("out-of-core: %d cliques (%d hub-only) in %v\n",
		stats.TotalCliques, stats.HubCliques, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("             %d blocks materialised, %d adjacency reads from disk\n",
		stats.Blocks, stats.DiskReads)

	cst, _ := os.Stat(cliquePath)
	fmt.Printf("clique store: %d KiB on disk for %d cliques\n", cst.Size()/1024, len(cliques))

	// Cross-check against the in-memory engine.
	res, err := mce.Enumerate(g, mce.WithBlockRatio(0.3))
	if err != nil {
		log.Fatal(err)
	}
	if res.Stats.TotalCliques == stats.TotalCliques {
		fmt.Println("matches the in-memory engine ✓")
	} else {
		log.Fatalf("MISMATCH: %d vs %d", stats.TotalCliques, res.Stats.TotalCliques)
	}
}
