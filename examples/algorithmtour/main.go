// Algorithm tour: run every algorithm/data-structure combination of the
// paper's per-block framework (§4) on graphs with different shapes and see
// why no single combination wins everywhere — the motivation for the
// decision tree.
//
// Run with:
//
//	go run ./examples/algorithmtour
package main

import (
	"fmt"
	"log"
	"time"

	"mce"
)

func main() {
	graphs := []struct {
		name string
		g    *mce.Graph
	}{
		{"sparse social (Holme-Kim n=2000)", mce.GenerateSocialNetwork(2000, 4, 0.6, 3)},
		{"dense random  (G(250, 0.3))", mce.GenerateErdosRenyi(250, 0.3, 3)},
		{"scale-free    (Barabasi-Albert n=3000)", mce.GenerateBarabasiAlbert(3000, 5, 3)},
	}
	algorithms := []string{"BKPivot", "Tomita", "Eppstein", "XPivot"}
	structures := []string{"Matrix", "Lists", "BitSets"}

	for _, entry := range graphs {
		fmt.Printf("\n%s: %d nodes, %d edges\n", entry.name, entry.g.N(), entry.g.M())
		type timing struct {
			combo   string
			elapsed time.Duration
			cliques int
		}
		var best, worst *timing
		for _, alg := range algorithms {
			for _, st := range structures {
				t0 := time.Now()
				res, err := mce.Enumerate(entry.g, mce.WithAlgorithm(alg, st))
				if err != nil {
					log.Fatal(err)
				}
				tm := &timing{
					combo:   fmt.Sprintf("[%s/%s]", st, alg),
					elapsed: time.Since(t0),
					cliques: res.Stats.TotalCliques,
				}
				if best == nil || tm.elapsed < best.elapsed {
					best = tm
				}
				if worst == nil || tm.elapsed > worst.elapsed {
					worst = tm
				}
			}
		}
		// And the decision tree (the library default).
		t0 := time.Now()
		res, err := mce.Enumerate(entry.g)
		if err != nil {
			log.Fatal(err)
		}
		treeTime := time.Since(t0)

		fmt.Printf("  %d maximal cliques\n", res.Stats.TotalCliques)
		fmt.Printf("  fastest combo: %-20s %v\n", best.combo, best.elapsed.Round(time.Microsecond))
		fmt.Printf("  slowest combo: %-20s %v (%.1fx slower)\n",
			worst.combo, worst.elapsed.Round(time.Microsecond),
			float64(worst.elapsed)/float64(best.elapsed))
		fmt.Printf("  decision tree (default):      %v\n", treeTime.Round(time.Microsecond))
		if best.cliques != res.Stats.TotalCliques {
			log.Fatalf("combos disagree on the clique count!")
		}
	}
}
