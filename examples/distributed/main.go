// Distributed enumeration: start a local "cluster" of block-analysis
// workers (stand-ins for the paper's 10 OpenMPI machines), run the same
// enumeration locally and distributed, and check the results agree.
//
// In production the workers would be separate mceworker processes on
// separate machines:
//
//	machine1$ mceworker -listen :9876
//	machine2$ mceworker -listen :9876
//	laptop$   mcefind -workers machine1:9876,machine2:9876 graph.txt
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"mce"
)

func main() {
	g := mce.GenerateSocialNetwork(8000, 6, 0.7, 7)
	fmt.Printf("network: %d nodes, %d edges\n", g.N(), g.M())

	// Local run.
	t0 := time.Now()
	local, err := mce.Enumerate(g, mce.WithBlockRatio(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local:       %6d cliques in %v\n",
		local.Stats.TotalCliques, time.Since(t0).Round(time.Millisecond))

	// Distributed run over four TCP workers on this machine.
	addrs, stop, err := mce.StartLocalWorkers(4)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	t0 = time.Now()
	dist, err := mce.Enumerate(g, mce.WithBlockRatio(0.5), mce.WithWorkers(addrs...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: %6d cliques in %v over %d workers\n",
		dist.Stats.TotalCliques, time.Since(t0).Round(time.Millisecond), len(addrs))

	if local.Stats.TotalCliques != dist.Stats.TotalCliques {
		log.Fatalf("MISMATCH: local %d vs distributed %d",
			local.Stats.TotalCliques, dist.Stats.TotalCliques)
	}
	fmt.Println("local and distributed results agree ✓")
}
