// Evolving network: maintain the maximal cliques of a social network as
// friendships are formed and dissolved, without re-running the full
// enumeration — the incremental scenario of the paper's future work (§8).
//
// Run with:
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mce"
)

func main() {
	// Start from a snapshot of a social network…
	g := mce.GenerateSocialNetwork(3000, 5, 0.7, 17)
	t0 := time.Now()
	tracker, err := mce.NewTracker(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: %d nodes, %d edges, %d maximal cliques (%v)\n",
		tracker.N(), tracker.M(), tracker.Len(), time.Since(t0).Round(time.Millisecond))

	// …then play a day of churn: new friendships (biased towards closing
	// triangles, as real networks do) and a few dissolved ones.
	rng := rand.New(rand.NewSource(99))
	var adds, removes, newCliques, deadCliques int
	t0 = time.Now()
	for i := 0; i < 2000; i++ {
		u := int32(rng.Intn(tracker.N()))
		v := int32(rng.Intn(tracker.N()))
		if rng.Intn(5) == 0 {
			// Dissolve an actual friendship of u: pick one from a clique
			// through u so the deletion always hits an existing edge.
			cliques := tracker.CliquesOf(u)
			c := cliques[rng.Intn(len(cliques))]
			w := int32(-1)
			for _, x := range c {
				if x != u {
					w = x
					break
				}
			}
			if w < 0 {
				continue // u is isolated
			}
			_, removed, err := tracker.RemoveEdge(u, w)
			if err != nil {
				log.Fatal(err)
			}
			removes++
			deadCliques += len(removed)
			continue
		}
		added, removed, err := tracker.AddEdge(u, v)
		if err != nil {
			log.Fatal(err)
		}
		if added != nil || removed != nil {
			adds++
			newCliques += len(added)
			deadCliques += len(removed)
		}
	}
	elapsed := time.Since(t0)
	fmt.Printf("churn: %d insertions, %d deletions in %v (%.0f updates/sec)\n",
		adds, removes, elapsed.Round(time.Millisecond),
		float64(adds+removes)/elapsed.Seconds())
	fmt.Printf("clique set now %d (saw %d born, %d die)\n",
		tracker.Len(), newCliques, deadCliques)

	// Sanity: the maintained set matches a from-scratch enumeration.
	b := mce.NewBuilder(tracker.N())
	for v := int32(0); v < int32(tracker.N()); v++ {
		for _, c := range tracker.CliquesOf(v) {
			for i := range c {
				for j := i + 1; j < len(c); j++ {
					b.AddEdge(c[i], c[j])
				}
			}
		}
	}
	res, err := mce.Enumerate(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Cliques) == tracker.Len() {
		fmt.Println("incremental clique set matches a full re-enumeration ✓")
	} else {
		log.Fatalf("MISMATCH: tracker %d vs full run %d", tracker.Len(), len(res.Cliques))
	}
}
