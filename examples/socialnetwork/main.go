// Community detection on a social network: generate a scale-free,
// clique-rich graph (the shape of real friendship networks), enumerate its
// maximal cliques, and report the largest communities and the most
// "social" members — including the communities formed entirely among hub
// users, which naive block decompositions lose.
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"

	"mce"
)

func main() {
	// A 5000-user network grown by preferential attachment with triadic
	// closure: new users befriend popular users and friends-of-friends.
	g := mce.GenerateSocialNetwork(5000, 6, 0.75, 42)
	fmt.Printf("network: %d users, %d friendships, most popular user has %d friends\n",
		g.N(), g.M(), g.MaxDegree())

	// Deliberately small blocks (m/d = 0.2): fast distributed processing,
	// many hub users — completeness now depends on the two-level scheme.
	res, err := mce.Enumerate(g, mce.WithBlockRatio(0.2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communities (maximal cliques): %d, of which %d consist of hub users only\n",
		res.Stats.TotalCliques, res.Stats.HubCliques)
	fmt.Printf("first-level decomposition iterations: %d\n\n", len(res.Stats.Levels))

	// Largest communities.
	order := make([]int, len(res.Cliques))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(res.Cliques[order[a]]) > len(res.Cliques[order[b]])
	})
	fmt.Println("five largest communities:")
	for _, i := range order[:5] {
		tag := ""
		if res.Level[i] >= 1 {
			tag = " (hub users only)"
		}
		fmt.Printf("  size %d%s: %v\n", len(res.Cliques[i]), tag, res.Cliques[i])
	}

	// Overlapping membership: users in the most communities. Unlike edge
	// clustering, maximal cliques naturally assign a user to several
	// communities (§7 of the paper).
	membership := map[int32]int{}
	for _, c := range res.Cliques {
		for _, v := range c {
			membership[v]++
		}
	}
	type mv struct {
		v int32
		n int
	}
	var tops []mv
	for v, n := range membership {
		tops = append(tops, mv{v, n})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].v < tops[j].v
	})
	fmt.Println("\nmost connected users (communities joined, friend count):")
	for _, t := range tops[:5] {
		fmt.Printf("  user %-5d %5d communities, %4d friends\n", t.v, t.n, g.Degree(t.v))
	}
}
