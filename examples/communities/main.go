// Overlapping community detection: enumerate maximal cliques, then derive
// k-clique communities by clique percolation, and compare with the relaxed
// k-plex community model (the extensions named in the paper's §8).
//
// Run with:
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"slices"

	"mce"
)

func main() {
	// A small collaboration-style network: three dense groups with shared
	// members, grown on top of a sparse backbone.
	b := mce.NewBuilder(16)
	groups := [][]int32{
		{0, 1, 2, 3, 4},   // research group A
		{4, 5, 6, 7},      // group B, sharing member 4
		{7, 8, 9, 10, 11}, // group C, sharing member 7
	}
	for _, grp := range groups {
		for i := range grp {
			for j := i + 1; j < len(grp); j++ {
				b.AddEdge(grp[i], grp[j])
			}
		}
	}
	// A sparse periphery.
	for _, e := range [][2]int32{{11, 12}, {12, 13}, {13, 14}, {14, 15}, {0, 15}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	res, err := mce.Enumerate(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d maximal cliques on %d nodes\n\n", len(res.Cliques), g.N())

	for _, k := range []int{3, 4} {
		comms, err := mce.Communities(res, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k-clique communities (k=%d):\n", k)
		for i, c := range comms {
			fmt.Printf("  #%d: %v (%d cliques, largest %d)\n", i, c.Nodes, c.Cliques, c.MaxCliqueSize)
		}
		membership := mce.CommunityMembership(comms)
		nodes := make([]int32, 0, len(membership))
		for v := range membership {
			nodes = append(nodes, v)
		}
		slices.Sort(nodes)
		for _, v := range nodes {
			if cs := membership[v]; len(cs) > 1 {
				fmt.Printf("  node %d bridges communities %v\n", v, cs)
			}
		}
		fmt.Println()
	}

	// k-plexes relax the all-pairs requirement: each member may miss up to
	// k others, so near-cliques (a group with one absent collaboration)
	// surface as single communities.
	plexes, err := mce.KPlexes(g, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal 2-plexes with ≥ 4 members: %d\n", len(plexes))
	for _, p := range plexes[:min(5, len(plexes))] {
		fmt.Printf("  %v\n", p)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
