// Quickstart: build a small friendship network, enumerate its maximal
// cliques, and inspect the run statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mce"
)

func main() {
	// The network of the paper's Figure 1: three overlapping communities
	// around the high-degree nodes D, S and E.
	names := []string{"A", "J", "H", "D", "E", "F", "G", "S", "X", "L", "Z", "R", "P", "Y", "W", "U"}
	id := map[string]int32{}
	for i, n := range names {
		id[n] = int32(i)
	}
	edges := [][2]string{
		{"A", "J"}, {"A", "H"}, {"J", "H"}, // community 1
		{"H", "F"}, {"H", "D"}, {"F", "D"}, // community 2
		{"D", "S"}, {"D", "E"}, {"S", "E"}, // the hub triangle
		{"L", "S"}, {"G", "E"}, {"U", "S"}, {"X", "E"},
		{"R", "D"}, {"P", "D"}, {"Z", "D"}, {"Y", "E"}, {"W", "S"},
	}

	b := mce.NewBuilder(len(names))
	for _, e := range edges {
		b.AddEdge(id[e[0]], id[e[1]])
	}
	g := b.Build()

	// With a small block size the high-degree nodes D, S and E become
	// hubs, exactly the situation the two-level decomposition handles.
	res, err := mce.Enumerate(g, mce.WithBlockSize(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d nodes, %d edges, block size m=%d\n", g.N(), g.M(), res.Stats.BlockSize)
	fmt.Printf("found %d maximal cliques (%d made of hub nodes only):\n",
		res.Stats.TotalCliques, res.Stats.HubCliques)
	for i, clique := range res.Cliques {
		fmt.Print("  {")
		for j, v := range clique {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Print(names[v])
		}
		fmt.Print("}")
		if res.Level[i] >= 1 {
			fmt.Print("   <- hub-only: found by the recursive call")
		}
		fmt.Println()
	}
}
