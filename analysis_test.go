package mce

import (
	"path/filepath"
	"testing"
)

func TestCommunitiesFromResult(t *testing.T) {
	// Two K5s sharing one node 4: at k=4 they stay separate communities
	// (overlap 1 < k−1), at k=2 they merge.
	b := NewBuilder(9)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	for u := int32(4); u < 9; u++ {
		for v := u + 1; v < 9; v++ {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	res, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Communities(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("k=4 communities = %d, want 2", len(cs))
	}
	merged, err := Communities(res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(merged[0].Nodes) != 9 {
		t.Fatalf("k=2 communities = %+v", merged)
	}
	m := CommunityMembership(cs)
	if len(m[4]) != 2 {
		t.Fatalf("bridge node 4 should be in both communities: %v", m[4])
	}
	if _, err := Communities(res, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestKPlexesPublicAPI(t *testing.T) {
	// C4 is a maximal 2-plex.
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	plexes, err := KPlexes(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plexes) != 1 || len(plexes[0]) != 4 {
		t.Fatalf("plexes = %v", plexes)
	}
	if _, err := KPlexes(g, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTrackerPublicAPI(t *testing.T) {
	g := GenerateSocialNetwork(100, 4, 0.6, 9)
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(res.Cliques) {
		t.Fatalf("tracker %d cliques, engine %d", tr.Len(), len(res.Cliques))
	}
	// Evolve and compare against a fresh enumeration.
	added, removed, err := tr.AddEdge(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 && len(removed) == 0 && !g.HasEdge(0, 99) {
		t.Fatal("adding a fresh edge produced no delta")
	}
	empty := NewEmptyTracker(3)
	if empty.Len() != 3 {
		t.Fatalf("empty tracker = %d cliques", empty.Len())
	}
}

func TestGraphMetrics(t *testing.T) {
	g := GenerateBarabasiAlbert(500, 4, 3)
	s := GraphMetrics(g)
	if s.Nodes != 500 || s.Edges != g.M() || s.MaxDegree != g.MaxDegree() {
		t.Fatalf("metrics = %+v", s)
	}
	if s.Degeneracy < 4 || s.DStar < s.Degeneracy {
		t.Fatalf("sparsity metrics implausible: %+v", s)
	}
	cores := Coreness(g)
	if len(cores) != 500 {
		t.Fatalf("coreness length %d", len(cores))
	}
	maxCore := int32(0)
	for _, c := range cores {
		if c > maxCore {
			maxCore = c
		}
	}
	if int(maxCore) != s.Degeneracy {
		t.Fatalf("max coreness %d != degeneracy %d", maxCore, s.Degeneracy)
	}
	degs := Degrees(g)
	if len(degs) != 500 || degs[0] != g.Degree(0) {
		t.Fatalf("degree sequence wrong")
	}
}

func TestPartitionedPublicAPI(t *testing.T) {
	g := GenerateSocialNetwork(200, 4, 0.6, 5)
	dir := t.TempDir()
	if err := SavePartitioned(dir, g, 3); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadPartitioned(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("partitioned round trip: M = %d, want %d", g2.M(), g.M())
	}
	r1, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Enumerate(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Cliques) != len(r2.Cliques) {
		t.Fatalf("clique count changed: %d vs %d", len(r1.Cliques), len(r2.Cliques))
	}
}

func TestVerifyResultAcceptsEngineOutput(t *testing.T) {
	g := GenerateSocialNetwork(300, 5, 0.7, 41)
	res, err := Enumerate(g, WithBlockRatio(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyResult(g, res); err != nil {
		t.Fatalf("engine output rejected: %v", err)
	}
}

func TestVerifyResultRejectsCorruption(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	good, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(r *Result)) error {
		r := &Result{
			Cliques: make([][]int32, len(good.Cliques)),
			Level:   append([]int(nil), good.Level...),
		}
		for i, c := range good.Cliques {
			r.Cliques[i] = append([]int32(nil), c...)
		}
		mutate(r)
		return VerifyResult(g, r)
	}
	cases := []struct {
		name   string
		mutate func(*Result)
	}{
		{"non-clique", func(r *Result) { r.Cliques[0] = []int32{0, 3} }},
		{"non-maximal", func(r *Result) { r.Cliques[0] = []int32{0, 1} }},
		{"duplicate", func(r *Result) { r.Cliques[1] = append([]int32(nil), r.Cliques[0]...) }},
		{"unsorted", func(r *Result) { c := r.Cliques[0]; c[0], c[1] = c[1], c[0] }},
		{"out-of-range", func(r *Result) { r.Cliques[0] = []int32{0, 99} }},
		{"empty-clique", func(r *Result) { r.Cliques[0] = nil }},
		{"level-mismatch", func(r *Result) { r.Level = r.Level[:1] }},
	}
	for _, c := range cases {
		if err := corrupt(c.mutate); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		}
	}
}

// Relabelling invariance: enumerating an isomorphic copy yields the same
// clique count and size profile.
func TestEnumerationRelabelInvariant(t *testing.T) {
	g := GenerateSocialNetwork(400, 4, 0.7, 43)
	perm := make([]int32, g.N())
	for i := range perm {
		perm[i] = int32(i)
	}
	// Deterministic shuffle.
	seed := int64(99)
	for i := len(perm) - 1; i > 0; i-- {
		seed = seed*6364136223846793005 + 1442695040888963407
		j := int((uint64(seed) >> 33) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	b := NewBuilder(g.N())
	for _, e := range gEdges(g) {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	h := b.Build()

	rg, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Enumerate(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rg.Cliques) != len(rh.Cliques) {
		t.Fatalf("relabelling changed clique count: %d vs %d", len(rg.Cliques), len(rh.Cliques))
	}
	sizeHist := func(cs [][]int32) map[int]int {
		m := map[int]int{}
		for _, c := range cs {
			m[len(c)]++
		}
		return m
	}
	hg, hh := sizeHist(rg.Cliques), sizeHist(rh.Cliques)
	for size, n := range hg {
		if hh[size] != n {
			t.Fatalf("size-%d cliques: %d vs %d", size, n, hh[size])
		}
	}
}

func gEdges(g *Graph) []Edge { return g.Edges() }

func TestOutOfCorePublicAPI(t *testing.T) {
	g := GenerateSocialNetwork(500, 5, 0.7, 61)
	dir := t.TempDir()
	dpath := filepath.Join(dir, "g.mceg")
	if err := SaveDiskGraph(dpath, g); err != nil {
		t.Fatal(err)
	}
	want, err := Enumerate(g, WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int32
	stats, err := EnumerateOutOfCore(dpath, func(c []int32, _ int) {
		cp := make([]int32, len(c))
		copy(cp, c)
		got = append(got, cp)
	}, WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Cliques) || stats.TotalCliques != len(got) {
		t.Fatalf("out-of-core %d cliques (stats %d), in-memory %d", len(got), stats.TotalCliques, len(want.Cliques))
	}
	wm := map[string]bool{}
	for _, c := range want.Cliques {
		wm[key(c)] = true
	}
	for _, c := range got {
		if !wm[key(c)] {
			t.Fatalf("spurious out-of-core clique {%s}", key(c))
		}
	}

	// Persist the result compactly and read it back.
	cpath := filepath.Join(dir, "cliques.mce")
	if err := SaveCliques(cpath, got); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCliques(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(got) {
		t.Fatalf("clique store round trip: %d vs %d", len(back), len(got))
	}
	if _, err := LoadCliques(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing clique store accepted")
	}
	if _, err := EnumerateOutOfCore(filepath.Join(dir, "absent"), func([]int32, int) {}); err == nil {
		t.Fatal("missing disk graph accepted")
	}
}
