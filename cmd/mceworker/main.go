// Command mceworker is a block-analysis worker: it listens on a TCP address
// and serves BLOCK-ANALYSIS tasks for coordinators (mcefind -workers, or the
// mce library's WithWorkers option). Workers are stateless; run one per
// machine, as the paper does with its 10-node OpenMPI cluster.
//
// Usage:
//
//	mceworker -listen :9876
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"mce/internal/cluster"
)

func main() {
	listen := flag.String("listen", ":9876", "TCP address to listen on")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mceworker:", err)
		os.Exit(1)
	}
	fmt.Printf("mceworker: serving block analysis on %s\n", ln.Addr())
	w := &cluster.Worker{}

	// Stop accepting on SIGINT/SIGTERM; in-flight connections finish their
	// current task before the process exits.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("mceworker: %v received, shutting down\n", s)
		w.Close()
	}()

	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "mceworker:", err)
		os.Exit(1)
	}
}
