// Command mceworker is a block-analysis worker: it listens on a TCP address
// and serves BLOCK-ANALYSIS tasks for coordinators (mcefind -workers, or the
// mce library's WithWorkers option). Workers are stateless; run one per
// machine, as the paper does with its 10-node OpenMPI cluster.
//
// Usage:
//
//	mceworker -listen :9876 [-max-conns n] [-drain-timeout d] [-debug-addr :6060]
//
// -debug-addr starts an HTTP debug server exposing the worker's live
// telemetry as JSON at /debug/vars (tasks served, errors, panics, bytes on
// the wire, per-combo block timings, MCE recursion counters) plus the
// standard net/http/pprof profiling endpoints under /debug/pprof/.
//
// On SIGINT/SIGTERM the worker stops accepting connections, finishes its
// in-flight tasks (up to -drain-timeout) and ships their results before
// exiting; a second signal force-exits immediately.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mce/internal/cluster"
	"mce/internal/telemetry"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig, nil))
}

// run is main with its environment injected, so tests can drive the worker
// end to end: args are the command-line arguments, sig delivers shutdown
// signals, and a non-nil started receives the bound listener and debug
// addresses once the worker is serving. A second signal on sig force-exits
// by returning 1 without waiting for the drain.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal, started chan<- [2]string) int {
	fs := flag.NewFlagSet("mceworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":9876", "TCP address to listen on")
	maxConns := fs.Int("max-conns", 0, "max concurrent coordinator connections (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight tasks")
	debugAddr := fs.String("debug-addr", "", "serve JSON telemetry and pprof on this HTTP address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "mceworker:", err)
		return 1
	}
	fmt.Fprintf(stdout, "mceworker: serving block analysis on %s\n", ln.Addr())
	w := &cluster.Worker{MaxConns: *maxConns, DrainTimeout: *drainTimeout}

	boundDebug := ""
	if *debugAddr != "" {
		eng := telemetry.NewEngine()
		w.Metrics = eng
		addr, stopDebug, err := telemetry.ServeDebug(*debugAddr, eng.Snapshot)
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, "mceworker:", err)
			return 1
		}
		defer stopDebug()
		boundDebug = addr
		fmt.Fprintf(stdout, "mceworker: debug endpoints on http://%s/debug/vars and /debug/pprof/\n", addr)
	}
	if started != nil {
		started <- [2]string{ln.Addr().String(), boundDebug}
	}

	drained := make(chan struct{})
	forced := make(chan struct{})
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(stdout, "mceworker: %v received, draining in-flight tasks (repeat to force exit)\n", s)
		//lint:ignore golifecycle the force-exit watcher lives until the process exits; that is its entire job
		go func() {
			if s, ok := <-sig; ok {
				fmt.Fprintf(stderr, "mceworker: %v received again, forcing exit\n", s)
				close(forced)
			}
		}()
		w.Close() // blocks until drained (bounded by -drain-timeout)
		close(drained)
	}()

	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(stderr, "mceworker:", err)
		return 1
	}
	// Serve only returns cleanly after Close was called; wait for the
	// drain so in-flight results reach their coordinators before exit.
	select {
	case <-drained:
	case <-forced:
		return 1
	}
	fmt.Fprintln(stdout, "mceworker: drained, bye")
	return 0
}
