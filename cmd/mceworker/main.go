// Command mceworker is a block-analysis worker: it listens on a TCP address
// and serves BLOCK-ANALYSIS tasks for coordinators (mcefind -workers, or the
// mce library's WithWorkers option). Workers are stateless; run one per
// machine, as the paper does with its 10-node OpenMPI cluster.
//
// Usage:
//
//	mceworker -listen :9876 [-max-conns n] [-drain-timeout d]
//
// On SIGINT/SIGTERM the worker stops accepting connections, finishes its
// in-flight tasks (up to -drain-timeout) and ships their results before
// exiting; a second signal force-exits immediately.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mce/internal/cluster"
)

func main() {
	listen := flag.String("listen", ":9876", "TCP address to listen on")
	maxConns := flag.Int("max-conns", 0, "max concurrent coordinator connections (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight tasks")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mceworker:", err)
		os.Exit(1)
	}
	fmt.Printf("mceworker: serving block analysis on %s\n", ln.Addr())
	w := &cluster.Worker{MaxConns: *maxConns, DrainTimeout: *drainTimeout}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	//lint:ignore goroutineleak the signal handler lives for the whole process by design; it exits with main
	go func() {
		s := <-sig
		fmt.Printf("mceworker: %v received, draining in-flight tasks (repeat to force exit)\n", s)
		//lint:ignore goroutineleak the force-exit watcher lives until os.Exit; that is its entire job
		go func() {
			s := <-sig
			fmt.Fprintf(os.Stderr, "mceworker: %v received again, forcing exit\n", s)
			os.Exit(1)
		}()
		w.Close() // blocks until drained (bounded by -drain-timeout)
		close(drained)
	}()

	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "mceworker:", err)
		os.Exit(1)
	}
	// Serve only returns cleanly after Close was called; wait for the
	// drain so in-flight results reach their coordinators before exit.
	<-drained
	fmt.Println("mceworker: drained, bye")
}
