package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"mce/internal/cluster"
	"mce/internal/decomp"
	"mce/internal/gen"
	"mce/internal/mcealg"
)

// startWorker runs the command under test and returns its addresses, a
// signal function and the exit-code channel.
func startWorker(t *testing.T, args ...string) (workerAddr, debugAddr string, sig chan os.Signal, exit chan int, out *bytes.Buffer) {
	t.Helper()
	sig = make(chan os.Signal, 2)
	exit = make(chan int, 1)
	started := make(chan [2]string, 1)
	out = &bytes.Buffer{}
	go func() { exit <- run(args, out, io.Discard, sig, started) }()
	select {
	case addrs := <-started:
		return addrs[0], addrs[1], sig, exit, out
	case code := <-exit:
		t.Fatalf("worker exited early with %d: %s", code, out)
		return "", "", nil, nil, nil
	}
}

func TestWorkerServesTasksAndDebugVars(t *testing.T) {
	workerAddr, debugAddr, sig, exit, _ := startWorker(t,
		"-listen", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	if debugAddr == "" {
		t.Fatal("no debug address bound")
	}

	// Ship a batch of real blocks through the worker.
	client, err := cluster.Dial([]string{workerAddr}, cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.ErdosRenyi(50, 0.25, 3)
	m := g.MaxDegree() + 1
	feasible, _ := decomp.Cut(g, m)
	blocks := decomp.Blocks(g, feasible, m, decomp.Options{})
	combos := make([]mcealg.Combo, len(blocks))
	for i := range combos {
		combos[i] = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(blocks) {
		t.Fatalf("got %d results for %d blocks", len(out), len(blocks))
	}
	client.Close()

	// The debug endpoint reflects the served tasks as JSON.
	resp, err := http.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var doc struct {
		Telemetry struct {
			TasksServed    int64 `json:"tasks_served"`
			BlocksAnalyzed int64 `json:"blocks_analyzed"`
			RecursionNodes int64 `json:"recursion_nodes"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, body)
	}
	if doc.Telemetry.TasksServed != int64(len(blocks)) {
		t.Fatalf("tasks_served = %d, want %d", doc.Telemetry.TasksServed, len(blocks))
	}
	if doc.Telemetry.BlocksAnalyzed == 0 || doc.Telemetry.RecursionNodes == 0 {
		t.Fatalf("algorithm counters empty: %+v", doc.Telemetry)
	}

	// pprof rides along.
	resp, err = http.Get("http://" + debugAddr + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	// Graceful shutdown on the first signal.
	sig <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not shut down")
	}
}

func TestWorkerDebugDisabledByDefault(t *testing.T) {
	_, debugAddr, sig, exit, out := startWorker(t, "-listen", "127.0.0.1:0")
	if debugAddr != "" {
		t.Fatalf("debug server started without -debug-addr: %s", debugAddr)
	}
	sig <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d: %s", code, out)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not shut down")
	}
}

func TestWorkerBadFlags(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, io.Discard, io.Discard, nil, nil); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-listen", "256.256.256.256:1"}, io.Discard, io.Discard, nil, nil); code != 1 {
		t.Fatalf("bad listen exit = %d, want 1", code)
	}
}
