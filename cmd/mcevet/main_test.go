package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module so the driver can
// be exercised end to end (go list + type-check + analyze) without touching
// the real tree.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module mcevetfixture\n\ngo 1.22\n",
		"main.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	return dir
}

func TestListExitsZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errb.String())
	}
	for _, name := range []string{"ctxplumb", "lockbalance", "sortedadj", "goroutineleak", "wiretypes"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run(-run nope) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr does not explain the failure: %s", errb.String())
	}
}

// TestSeededViolationFailsTheGate is the acceptance check for the merge
// gate: a tree with a planted invariant violation must make the driver exit
// non-zero and name the analyzer.
func TestSeededViolationFailsTheGate(t *testing.T) {
	dir := writeModule(t, `package main

import "time"

// Nap blocks with no Context variant: a ctxplumb violation.
func Nap() {
	time.Sleep(time.Millisecond)
}

func main() {}
`)
	var out, errb strings.Builder
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run on seeded violation = %d, want 1 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ctxplumb") || !strings.Contains(out.String(), "NapContext") {
		t.Errorf("diagnostic does not name the analyzer and the missing variant:\n%s", out.String())
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, `package main

import "fmt"

func main() {
	fmt.Println("clean")
}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("run on clean module = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, `package main

import "time"

func Nap() {
	time.Sleep(time.Millisecond)
}

func main() {}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run -json = %d, want 1 (stderr: %s)", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, `"analyzer": "ctxplumb"`) || !strings.Contains(s, `"line"`) {
		t.Errorf("JSON output missing expected fields:\n%s", s)
	}
}
