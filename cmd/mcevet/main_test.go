package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module so the driver can
// be exercised end to end (go list + type-check + analyze) without touching
// the real tree.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module mcevetfixture\n\ngo 1.22\n",
		"main.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	return dir
}

func TestListExitsZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errb.String())
	}
	for _, name := range []string{
		"ctxplumb", "lockbalance", "sortedadj", "wiretypes",
		"maporder", "telemetryguard",
		"lockorder", "golifecycle", "chandiscipline", "casloop",
		"hotalloc", "hotbox", "hotdefer", "hotslice",
		"staleignore",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run(-run nope) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr does not explain the failure: %s", errb.String())
	}
}

// TestSeededViolationFailsTheGate is the acceptance check for the merge
// gate: a tree with a planted invariant violation must make the driver exit
// non-zero and name the analyzer.
func TestSeededViolationFailsTheGate(t *testing.T) {
	dir := writeModule(t, `package main

import "time"

// Nap blocks with no Context variant: a ctxplumb violation.
func Nap() {
	time.Sleep(time.Millisecond)
}

func main() {}
`)
	var out, errb strings.Builder
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run on seeded violation = %d, want 1 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ctxplumb") || !strings.Contains(out.String(), "NapContext") {
		t.Errorf("diagnostic does not name the analyzer and the missing variant:\n%s", out.String())
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, `package main

import "fmt"

func main() {
	fmt.Println("clean")
}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("run on clean module = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, `package main

import "time"

func Nap() {
	time.Sleep(time.Millisecond)
}

func main() {}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run -json = %d, want 1 (stderr: %s)", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, `"analyzer": "ctxplumb"`) || !strings.Contains(s, `"line"`) {
		t.Errorf("JSON output missing expected fields:\n%s", s)
	}
}

func TestJSONAndSARIFMutuallyExclusive(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("run(-json -sarif) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr does not explain the conflict: %s", errb.String())
	}
}

// TestSARIFOutput checks the -sarif report parses and carries the fields
// GitHub code scanning requires: schema version, driver name, rule metadata,
// and a physical location per result.
func TestSARIFOutput(t *testing.T) {
	dir := writeModule(t, `package main

import "time"

func Nap() {
	time.Sleep(time.Millisecond)
}

func main() {}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "-sarif", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run -sarif = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "mcevet" {
		t.Fatalf("SARIF driver missing or misnamed:\n%s", out.String())
	}
	rules := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("SARIF report has no results for a seeded violation")
	}
	for _, res := range log.Runs[0].Results {
		if !rules[res.RuleID] {
			t.Errorf("result ruleId %q has no matching rule entry", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result %q has %d locations, want 1", res.RuleID, len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("uriBaseId = %q, want %%SRCROOT%%", loc.ArtifactLocation.URIBaseID)
		}
		if filepath.IsAbs(loc.ArtifactLocation.URI) || loc.Region.StartLine <= 0 {
			t.Errorf("location not repo-relative with a line: %+v", loc)
		}
	}
}

// TestRunAcceptsPackagePatterns pins the -run grammar: analyzer names and
// package patterns mix freely in one flag value.
func TestRunAcceptsPackagePatterns(t *testing.T) {
	dir := writeModule(t, `package main

import "time"

func Nap() {
	time.Sleep(time.Millisecond)
}

func main() {}
`)
	// ctxplumb selected alongside the pattern: the violation is found.
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "-run", "ctxplumb,./..."}, &out, &errb); code != 1 {
		t.Fatalf("run(-run ctxplumb,./...) = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "ctxplumb") {
		t.Errorf("finding does not name ctxplumb:\n%s", out.String())
	}
	// Only maporder selected: the ctxplumb violation is invisible.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", dir, "-run", "maporder,./..."}, &out, &errb); code != 0 {
		t.Fatalf("run(-run maporder,./...) = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
}

// git runs a git command in dir with identity pinned, failing the test on
// error.
func git(t *testing.T, dir string, args ...string) {
	t.Helper()
	full := append([]string{"-C", dir, "-c", "user.email=test@test", "-c", "user.name=test"}, args...)
	if out, err := exec.Command("git", full...).CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

// TestDiffMode checks the changed-package selection: editing one package
// selects it plus its importers, and an untouched tree selects nothing.
func TestDiffMode(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module mcevetfixture\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nimport \"mcevetfixture/a\"\n\nfunc B() int { return a.A() }\n",
		"c/c.go": "package c\n\nfunc C() int { return 3 }\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	git(t, dir, "init", "-q")
	git(t, dir, "add", ".")
	git(t, dir, "commit", "-q", "-m", "seed")

	// Untouched tree: -diff selects nothing and the driver exits clean.
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "-diff", "HEAD"}, &out, &errb); code != 0 {
		t.Fatalf("run -diff on untouched tree = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no Go packages changed") {
		t.Errorf("stderr does not report the empty selection: %s", errb.String())
	}

	// Editing a must select a and its importer b, never the unrelated c.
	if err := os.WriteFile(filepath.Join(dir, "a", "a.go"),
		[]byte("package a\n\nfunc A() int { return 2 }\n"), 0o644); err != nil {
		t.Fatalf("editing a: %v", err)
	}
	changed, err := changedPackages(dir, "HEAD")
	if err != nil {
		t.Fatalf("changedPackages: %v", err)
	}
	got := strings.Join(changed, " ")
	if !strings.Contains(got, "mcevetfixture/a") || !strings.Contains(got, "mcevetfixture/b") {
		t.Errorf("changedPackages = %v, want a and its importer b", changed)
	}
	if strings.Contains(got, "mcevetfixture/c") {
		t.Errorf("changedPackages selected unrelated package c: %v", changed)
	}
}

// TestFixMode drives -fix end to end: a maporder violation is repaired in
// place, the automatic re-run comes back clean, and the driver exits 0.
func TestFixMode(t *testing.T) {
	dir := writeModule(t, `package main

import (
	"fmt"
)

func main() {
	set := map[string]int{"a": 1}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	fmt.Println(keys)
}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "-fix", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("run -fix = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "fixed") {
		t.Errorf("stderr does not report the fixed file: %s", errb.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatalf("reading fixed file: %v", err)
	}
	if !strings.Contains(string(fixed), "slices.Sort(keys)") || !strings.Contains(string(fixed), `"slices"`) {
		t.Errorf("-fix did not repair the violation:\n%s", fixed)
	}
}

// TestAllocBudgetCycle drives the perf gate end to end, pinning the
// acceptance criterion of the hot-path layer: a hot allocation fails until
// -update-allocbudget accepts it, deleting the budget entry re-arms the
// gate, and a planted fmt call in a hot loop fails regardless of budget.
func TestAllocBudgetCycle(t *testing.T) {
	dir := writeModule(t, `package main

// Enumerate is this module's annotated enumeration root.
//
//mce:hotpath fixture enumeration root
func Enumerate(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func main() { Enumerate(10) }
`)
	hotArgs := []string{"-C", dir, "-run", "hotalloc,hotbox,hotdefer,hotslice", "./..."}

	// 1. No budget: the returned make() escapes and fails the gate.
	var out, errb strings.Builder
	if code := run(hotArgs, &out, &errb); code != 1 {
		t.Fatalf("run with no budget = %d, want 1 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "hotalloc") || !strings.Contains(out.String(), "not in budget") {
		t.Errorf("diagnostic does not name the analyzer and the missing budget:\n%s", out.String())
	}

	// 2. Accept the site the way a human would, then the gate passes.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", dir, "-update-allocbudget"}, &out, &errb); code != 0 {
		t.Fatalf("-update-allocbudget = %d, want 0 (stderr: %s)", code, errb.String())
	}
	budgetPath := filepath.Join(dir, ".mcevet", "allocbudget.json")
	raw, err := os.ReadFile(budgetPath)
	if err != nil {
		t.Fatalf("budget file was not written: %v", err)
	}
	if !strings.Contains(string(raw), "make([]int, n) escapes to heap") {
		t.Errorf("budget file does not carry the accepted site:\n%s", raw)
	}
	out.Reset()
	errb.Reset()
	if code := run(hotArgs, &out, &errb); code != 0 {
		t.Fatalf("run with budget = %d, want 0 (stdout: %s)", code, out.String())
	}

	// 3. Deleting the entry re-arms the gate.
	if err := os.WriteFile(budgetPath, []byte(`{"sites": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run(hotArgs, &out, &errb); code != 1 {
		t.Fatalf("run after deleting the budget entry = %d, want 1 (stdout: %s)", code, out.String())
	}

	// 4. A fmt call planted in the hot loop fails even with a fresh budget:
	// hotbox findings are not budgetable.
	src := `package main

import "fmt"

// Enumerate is this module's annotated enumeration root.
//
//mce:hotpath fixture enumeration root
func Enumerate(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
		fmt.Sprintf("%d", i)
	}
	return out
}

func main() { Enumerate(10) }
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", dir, "-update-allocbudget"}, &out, &errb); code != 0 {
		t.Fatalf("-update-allocbudget after edit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(hotArgs, &out, &errb); code != 1 {
		t.Fatalf("run with planted fmt.Sprintf = %d, want 1 (stdout: %s)", code, out.String())
	}
	if !strings.Contains(out.String(), "hotbox") || !strings.Contains(out.String(), "fmt.Sprintf") {
		t.Errorf("diagnostic does not name hotbox and the fmt call:\n%s", out.String())
	}
}
