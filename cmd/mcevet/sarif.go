package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"mce/internal/lint"
)

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests: one
// run, one rule per analyzer, one result per diagnostic with a physical
// location whose URI is repo-relative. The structs mirror the schema names
// so a reader can diff against the spec directly.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits the diagnostics as one SARIF run. root anchors the
// artifact URIs: paths under it become relative (what code scanning wants);
// anything else keeps its absolute path.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic, root string) error {
	driver := sarifDriver{Name: "mcevet"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// RunAnalyzers reports unjustified/stale directives under the synthetic
	// "lint" rule; register it so every result's ruleId resolves.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "lint:ignore directive hygiene"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && filepath.IsLocal(rel) {
			uri = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
