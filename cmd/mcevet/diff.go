package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The -diff mode: analyze only the packages whose files changed against a
// git base revision, plus every package that (transitively) imports one of
// them — importers see changed export data, so a cross-package analyzer
// (maporder facts, casloop's whole-suite atomic-field scan) can produce new findings
// there even when their own files are untouched. This is the fast PR gate;
// the full ./... run stays the merge gate on main.

// listedPackage is the slice of `go list -json` the diff mode needs.
// TestImports and XTestImports matter because the suite analyzes test files:
// a package whose *tests* import a changed package sees changed export data
// in its test unit, so it belongs in the closure too.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Imports      []string
	TestImports  []string
	XTestImports []string
	GoFiles      []string
}

// changedPackages returns the import paths to analyze for changes against
// base, or nil when nothing relevant changed.
func changedPackages(dir, base string) ([]string, error) {
	files, err := gitChangedFiles(dir, base)
	if err != nil {
		return nil, err
	}
	goFiles := files[:0]
	for _, f := range files {
		if strings.HasSuffix(f, ".go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return nil, nil
	}

	pkgs, err := listPackages(dir)
	if err != nil {
		return nil, err
	}

	// git reports paths relative to the repository toplevel, which need not
	// be dir itself.
	top, err := gitTopLevel(dir)
	if err != nil {
		return nil, err
	}

	// Seed: packages owning a changed file (deleted files still resolve via
	// their directory).
	changedDirs := make(map[string]bool)
	for _, f := range goFiles {
		changedDirs[filepath.Dir(filepath.Join(top, f))] = true
	}
	seeds := make(map[string]bool)
	for _, p := range pkgs {
		if changedDirs[filepath.Clean(p.Dir)] {
			seeds[p.ImportPath] = true
		}
	}
	if len(seeds) == 0 {
		return nil, nil
	}

	// Closure: reverse importers, to a fixpoint. Test imports count: the
	// test unit of an importer is analyzed alongside its package.
	importers := make(map[string][]string)
	for _, p := range pkgs {
		for _, list := range [][]string{p.Imports, p.TestImports, p.XTestImports} {
			for _, imp := range list {
				importers[imp] = append(importers[imp], p.ImportPath)
			}
		}
	}
	queue := make([]string, 0, len(seeds))
	for p := range seeds {
		queue = append(queue, p)
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, up := range importers[p] {
			if !seeds[up] {
				seeds[up] = true
				queue = append(queue, up)
			}
		}
	}

	out := make([]string, 0, len(seeds))
	for p := range seeds {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// gitChangedFiles lists the repo-relative files that differ from base,
// including uncommitted changes.
func gitChangedFiles(dir, base string) ([]string, error) {
	cmd := exec.Command("git", "-C", dir, "diff", "--name-only", base, "--")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("git diff %s: %v: %s", base, err, strings.TrimSpace(stderr.String()))
	}
	var files []string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			files = append(files, line)
		}
	}
	return files, nil
}

// gitTopLevel resolves the repository root the diff paths are relative to.
func gitTopLevel(dir string) (string, error) {
	cmd := exec.Command("git", "-C", dir, "rev-parse", "--show-toplevel")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("git rev-parse --show-toplevel: %v: %s", err, strings.TrimSpace(stderr.String()))
	}
	return strings.TrimSpace(stdout.String()), nil
}

// listPackages runs `go list -json ./...` in dir and decodes the stream.
func listPackages(dir string) ([]listedPackage, error) {
	cmd := exec.Command("go", "list", "-e", "-json=Dir,ImportPath,Imports,TestImports,XTestImports,GoFiles", "./...")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, strings.TrimSpace(stderr.String()))
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
