// Command mcevet runs the repo's custom static-analysis suite
// (internal/lint) over Go packages and reports every invariant violation.
//
// Usage:
//
//	mcevet [-list] [-run name,name] [-json] [-sarif] [-diff base] [-fix] [-update-allocbudget] [packages...]
//
// With no package patterns, ./... is analyzed relative to the current
// directory. The exit status is 1 when any diagnostic is reported and 2 on
// analysis failure, mirroring go vet.
//
// -run selects analyzers by name; entries that look like package patterns
// (./internal/..., mce/cmd/mcefind) are treated as extra package arguments,
// so `mcevet -run maporder,./internal/...` does what it reads as.
//
// -sarif emits SARIF 2.1.0 for GitHub code scanning instead of the text
// report. -diff <base> analyzes only the packages with files changed
// against the git revision base, plus everything that transitively imports
// them — the fast PR gate. -fix applies the analyzers' suggested fixes
// (inserting sorts, wrapping nil guards), re-runs the suite once over the
// fixed tree, and reports what remains.
//
// -update-allocbudget regenerates .mcevet/allocbudget.json — the committed
// list of accepted hot-path allocation sites that the hotalloc analyzer
// reconciles the compiler's escape analysis against. The write is
// deterministic, so CI can re-run it and fail on `git diff --exit-code`.
//
// The suite is also meant as a merge gate: `make lint` (and `make check`)
// run `mcevet ./...` next to `go vet`. The driver is standalone rather than
// a `go vet -vettool` plugin because the vettool protocol lives in
// golang.org/x/tools/go/analysis/unitchecker, which the offline build cannot
// depend on; the analyzers themselves follow the analysis.Analyzer shape, so
// migrating to the real driver is mechanical when the dependency becomes
// available.
//
// Findings are suppressed line-by-line with
//
//	//lint:ignore <analyzer>[,<analyzer>] <justification>
//
// placed on, or directly above, the offending line. A directive without a
// justification is itself reported, and so is a justified directive that no
// longer suppresses anything (the staleignore analyzer).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mce/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the analyzers and exit")
		runNames = fs.String("run", "", "comma-separated analyzer names and/or package patterns to run (default: all analyzers)")
		asJSON   = fs.Bool("json", false, "emit diagnostics as a JSON array")
		asSARIF  = fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 (for code scanning)")
		diffBase = fs.String("diff", "", "analyze only packages changed against this git revision (plus their importers)")
		applyFix = fs.Bool("fix", false, "apply suggested fixes, then re-run once and report what remains")
		chdir    = fs.String("C", ".", "resolve package patterns relative to this directory")
		tests    = fs.Bool("tests", true, "include _test.go files (in-package and external test packages) in the analysis")
		upBudget = fs.Bool("update-allocbudget", false, "regenerate "+lint.DefaultBudgetPath+" from the current hot-path escape analysis and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "mcevet: -json and -sarif are mutually exclusive")
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	analyzers := all
	if *runNames != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		var selected []*lint.Analyzer
		for _, entry := range strings.Split(*runNames, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			if isPackagePattern(entry) {
				patterns = append(patterns, entry)
				continue
			}
			a, ok := byName[entry]
			if !ok {
				fmt.Fprintf(stderr, "mcevet: unknown analyzer %q (try -list)\n", entry)
				return 2
			}
			selected = append(selected, a)
		}
		if len(selected) > 0 {
			analyzers = selected
		}
	}

	if *upBudget {
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		return updateBudget(*chdir, patterns, *tests, stdout, stderr)
	}

	if *diffBase != "" {
		changed, err := changedPackages(*chdir, *diffBase)
		if err != nil {
			fmt.Fprintf(stderr, "mcevet: %v\n", err)
			return 2
		}
		if len(changed) == 0 {
			fmt.Fprintf(stderr, "mcevet: no Go packages changed against %s\n", *diffBase)
			return 0
		}
		fmt.Fprintf(stderr, "mcevet: %d package(s) changed against %s (importers included)\n", len(changed), *diffBase)
		patterns = changed
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, code := analyze(*chdir, patterns, analyzers, *tests, stderr)
	if code != 0 {
		return code
	}

	if *applyFix {
		changed, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "mcevet: applying fixes: %v\n", err)
			return 2
		}
		if len(changed) > 0 {
			for _, f := range changed {
				fmt.Fprintf(stderr, "mcevet: fixed %s\n", f)
			}
			// The tree changed under us: one re-run decides what remains.
			diags, code = analyze(*chdir, patterns, analyzers, *tests, stderr)
			if code != 0 {
				return code
			}
		}
	}

	switch {
	case *asSARIF:
		root, err := filepath.Abs(*chdir)
		if err != nil {
			root = *chdir
		}
		if err := writeSARIF(stdout, analyzers, diags, root); err != nil {
			fmt.Fprintf(stderr, "mcevet: %v\n", err)
			return 2
		}
	case *asJSON:
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mcevet: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*asJSON && !*asSARIF {
			fmt.Fprintf(stderr, "mcevet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// updateBudget regenerates the allocation budget file from the current
// hot-path escape analysis: the accepted-allocation counterpart of gofmt -w.
// Notes on surviving entries are carried over; the write is deterministic, so
// `git diff --exit-code` after a run is the CI drift check.
func updateBudget(dir string, patterns []string, tests bool, stdout, stderr io.Writer) int {
	budgetPath := filepath.Join(dir, lint.DefaultBudgetPath)
	prev, err := lint.LoadAllocBudget(budgetPath)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return 2
	}
	pkgs, err := lint.LoadTests(dir, tests, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return 2
	}
	entries, err := lint.CollectAllocBudget(pkgs, prev)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return 2
	}
	if err := lint.WriteAllocBudget(budgetPath, entries); err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return 2
	}
	was := make(map[string]bool, len(prev))
	for _, e := range prev {
		was[e.Site] = true
	}
	added := 0
	for _, e := range entries {
		if !was[e.Site] {
			added++
		}
		delete(was, e.Site)
	}
	fmt.Fprintf(stdout, "mcevet: wrote %s: %d site(s), %d added, %d dropped\n",
		budgetPath, len(entries), added, len(was))
	return 0
}

// analyze loads the patterns and runs the analyzers, returning the
// diagnostics and a non-zero exit code on load/analysis failure.
func analyze(dir string, patterns []string, analyzers []*lint.Analyzer, tests bool, stderr io.Writer) ([]lint.Diagnostic, int) {
	pkgs, err := lint.LoadTests(dir, tests, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return nil, 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return nil, 2
	}
	return diags, 0
}

// isPackagePattern distinguishes a -run entry naming a package from one
// naming an analyzer: analyzers are single lowercase words, so anything
// with a path separator, a leading dot, or a ... wildcard is a pattern.
func isPackagePattern(s string) bool {
	return strings.ContainsAny(s, "/\\") || strings.HasPrefix(s, ".") || strings.Contains(s, "...")
}
