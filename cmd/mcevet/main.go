// Command mcevet runs the repo's custom static-analysis suite
// (internal/lint) over Go packages and reports every invariant violation.
//
// Usage:
//
//	mcevet [-list] [-run name,name] [-json] [packages...]
//
// With no package patterns, ./... is analyzed relative to the current
// directory. The exit status is 1 when any diagnostic is reported and 2 on
// analysis failure, mirroring go vet.
//
// The suite is also meant as a merge gate: `make lint` (and `make check`)
// run `mcevet ./...` next to `go vet`. The driver is standalone rather than
// a `go vet -vettool` plugin because the vettool protocol lives in
// golang.org/x/tools/go/analysis/unitchecker, which the offline build cannot
// depend on; the analyzers themselves follow the analysis.Analyzer shape, so
// migrating to the real driver is mechanical when the dependency becomes
// available.
//
// Findings are suppressed line-by-line with
//
//	//lint:ignore <analyzer>[,<analyzer>] <justification>
//
// placed on, or directly above, the offending line. A directive without a
// justification is itself reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mce/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the analyzers and exit")
		runNames = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		asJSON   = fs.Bool("json", false, "emit diagnostics as a JSON array")
		chdir    = fs.String("C", ".", "resolve package patterns relative to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *runNames != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "mcevet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "mcevet: %v\n", err)
		return 2
	}

	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mcevet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "mcevet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
