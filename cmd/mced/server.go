package main

// The HTTP serving core: four query endpoints over a cliqdb index, wrapped
// in admission control, per-request deadlines, result caching and a
// degraded mode that keeps the stale index answering while a rebuild runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mce/internal/cliqdb"
	"mce/internal/community"
	"mce/internal/resguard"
	"mce/internal/telemetry"
)

// queryDB is the slice of *cliqdb.DB the handlers need. It exists so the
// overload and drain tests can substitute a database with controllable
// latency; production always serves the real index.
type queryDB interface {
	NumVertices() int32
	NumCliques() int
	CliqueSize(id uint32) int
	AppendClique(dst []int32, id uint32) []int32
	AppendCliquesOf(dst []uint32, v int32) []uint32
	AppendCommonCliques(dst []uint32, u, v int32) []uint32
	AppendTopK(dst []uint32, k int) []uint32
	Cliques() [][]int32
	Digest() uint32
}

// Endpoint slots for telemetry.Engine.EndpointObserved.
const (
	slotCliquesOf = iota
	slotCommonCliques
	slotTopK
	slotCommunities
	slotRebuild
)

type serverConfig struct {
	met         *telemetry.Engine
	guard       *resguard.Guard
	deadline    time.Duration
	maxInflight int
	cacheSize   int
	maxResults  int
	dbPath      string
	segDir      string
}

type server struct {
	cfg      serverConfig
	inflight chan struct{}
	cache    *resultCache

	db         atomic.Pointer[queryDB]
	rebuilding atomic.Bool
}

func newServer(db queryDB, cfg serverConfig) *server {
	if cfg.maxInflight <= 0 {
		cfg.maxInflight = 1
	}
	if cfg.maxResults <= 0 {
		cfg.maxResults = 1
	}
	if cfg.deadline <= 0 {
		cfg.deadline = time.Second
	}
	s := &server{
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.maxInflight),
		cache:    newResultCache(cfg.cacheSize, cfg.met),
	}
	s.db.Store(&db)
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cliques-of", s.query(slotCliquesOf, "cliques-of", s.cliquesOf))
	mux.HandleFunc("/v1/common-cliques", s.query(slotCommonCliques, "common-cliques", s.commonCliques))
	mux.HandleFunc("/v1/top-k", s.query(slotTopK, "top-k", s.topK))
	mux.HandleFunc("/v1/communities", s.query(slotCommunities, "communities", s.communities))
	mux.HandleFunc("/v1/rebuild", s.rebuild)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.rebuilding.Load() {
			fmt.Fprintln(w, "degraded: rebuilding index, serving stale")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// result is one computed response, ready to ship and to cache.
type result struct {
	body   []byte
	status int
}

// query wraps a handler in the full serving discipline: admission control
// (slot pool + heap budget → 429), the result cache with singleflight, a
// per-request deadline (→ 504), degraded-mode accounting, and per-endpoint
// telemetry. The computation runs in its own goroutine that holds the
// admission slot until it finishes — a timed-out query still occupies its
// slot, so -max-inflight bounds actual work, not just waiting clients.
func (s *server) query(slot int, name string, h func(ctx context.Context, db queryDB, r *http.Request) result) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		status := s.serveQuery(w, r, h)
		if s.cfg.met != nil {
			s.cfg.met.EndpointObserved(slot, name, time.Since(t0), status)
		}
	}
}

func (s *server) serveQuery(w http.ResponseWriter, r *http.Request, h func(ctx context.Context, db queryDB, r *http.Request) result) int {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return http.StatusMethodNotAllowed
	}
	met := s.cfg.met

	// Cache hits bypass admission: they cost a map lookup and a write, and
	// serving them under overload is the whole point of having a cache.
	key := r.URL.Path + "?" + r.URL.RawQuery
	if res, ok := s.cache.get(key); ok {
		return writeResult(w, res)
	}

	if s.cfg.guard != nil && s.cfg.guard.OverBudget() {
		return s.shed(w, met)
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		return s.shed(w, met)
	}
	if met != nil {
		met.QueriesAdmitted.Inc()
		if s.rebuilding.Load() {
			met.DegradedServes.Inc()
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.deadline)
	defer cancel()
	done := make(chan result, 1)
	go func() {
		defer func() { <-s.inflight }()
		done <- s.cache.do(key, func() result {
			return h(ctx, s.loadDB(), r)
		})
	}()
	select {
	case res := <-done:
		return writeResult(w, res)
	case <-ctx.Done():
		if met != nil {
			met.QueriesTimedOut.Inc()
		}
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return http.StatusGatewayTimeout
	}
}

func (s *server) shed(w http.ResponseWriter, met *telemetry.Engine) int {
	if met != nil {
		met.QueriesShed.Inc()
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
	return http.StatusTooManyRequests
}

func (s *server) loadDB() queryDB { return *s.db.Load() }

func writeResult(w http.ResponseWriter, res result) int {
	if res.status == http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	return res.status
}

func jsonResult(v any) result {
	body, err := json.Marshal(v)
	if err != nil {
		return errResult(http.StatusInternalServerError, "encode response: %v", err)
	}
	return result{body: append(body, '\n'), status: http.StatusOK}
}

func errResult(status int, format string, args ...any) result {
	return result{body: []byte(fmt.Sprintf(format, args...) + "\n"), status: status}
}

// --- endpoint handlers ---

type cliqueJSON struct {
	ID      uint32  `json:"id"`
	Size    int     `json:"size"`
	Members []int32 `json:"members"`
}

func (s *server) cliqueList(db queryDB, ids []uint32) (list []cliqueJSON, truncated bool) {
	if len(ids) > s.cfg.maxResults {
		ids = ids[:s.cfg.maxResults]
		truncated = true
	}
	list = make([]cliqueJSON, len(ids))
	for i, id := range ids {
		list[i] = cliqueJSON{ID: id, Size: db.CliqueSize(id), Members: db.AppendClique(nil, id)}
	}
	return list, truncated
}

func parseVertex(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("query parameter %q must be a non-negative vertex ID, got %q", name, raw)
	}
	return int32(v), nil
}

// cliquesOf serves GET /v1/cliques-of?v=N — every maximal clique containing
// vertex v. A vertex outside the index's ID space is a valid query with an
// empty answer, not an error.
func (s *server) cliquesOf(ctx context.Context, db queryDB, r *http.Request) result {
	v, err := parseVertex(r, "v")
	if err != nil {
		return errResult(http.StatusBadRequest, "%v", err)
	}
	var ids []uint32
	if v < db.NumVertices() {
		ids = db.AppendCliquesOf(nil, v)
	}
	list, truncated := s.cliqueList(db, ids)
	return jsonResult(map[string]any{
		"vertex": v, "total": len(ids), "truncated": truncated, "cliques": list,
	})
}

// commonCliques serves GET /v1/common-cliques?u=N&v=M — the maximal cliques
// containing both u and v (nonempty exactly when u and v are adjacent).
func (s *server) commonCliques(ctx context.Context, db queryDB, r *http.Request) result {
	u, err := parseVertex(r, "u")
	if err != nil {
		return errResult(http.StatusBadRequest, "%v", err)
	}
	v, err := parseVertex(r, "v")
	if err != nil {
		return errResult(http.StatusBadRequest, "%v", err)
	}
	var ids []uint32
	if u < db.NumVertices() && v < db.NumVertices() {
		ids = db.AppendCommonCliques(nil, u, v)
	}
	list, truncated := s.cliqueList(db, ids)
	return jsonResult(map[string]any{
		"u": u, "v": v, "total": len(ids), "truncated": truncated, "cliques": list,
	})
}

// topK serves GET /v1/top-k?k=N — the k largest maximal cliques, size
// descending with clique ID as the tiebreak.
func (s *server) topK(ctx context.Context, db queryDB, r *http.Request) result {
	raw := r.URL.Query().Get("k")
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 {
		return errResult(http.StatusBadRequest, "query parameter %q must be a positive count, got %q", "k", raw)
	}
	truncated := false
	if k > s.cfg.maxResults {
		k = s.cfg.maxResults
		truncated = true
	}
	ids := db.AppendTopK(nil, k)
	list, _ := s.cliqueList(db, ids)
	return jsonResult(map[string]any{
		"k": k, "total": len(ids), "truncated": truncated, "cliques": list,
	})
}

type communityJSON struct {
	Nodes         []int32 `json:"nodes"`
	Cliques       int     `json:"cliques"`
	MaxCliqueSize int     `json:"max_clique_size"`
}

// communities serves GET /v1/communities?k=N — k-clique percolation over
// the whole index. This is the one endpoint that touches every clique, so
// it is the reason queries carry deadlines.
func (s *server) communities(ctx context.Context, db queryDB, r *http.Request) result {
	raw := r.URL.Query().Get("k")
	k, err := strconv.Atoi(raw)
	if err != nil || k < 2 {
		return errResult(http.StatusBadRequest, "query parameter %q must be an integer ≥ 2, got %q", "k", raw)
	}
	comms, err := community.Detect(db.Cliques(), k)
	if err != nil {
		return errResult(http.StatusBadRequest, "%v", err)
	}
	truncated := false
	if len(comms) > s.cfg.maxResults {
		comms = comms[:s.cfg.maxResults]
		truncated = true
	}
	list := make([]communityJSON, len(comms))
	for i, c := range comms {
		list[i] = communityJSON{Nodes: c.Nodes, Cliques: c.Cliques, MaxCliqueSize: c.MaxCliqueSize}
	}
	return jsonResult(map[string]any{
		"k": k, "total": len(list), "truncated": truncated, "communities": list,
	})
}

// rebuild serves POST /v1/rebuild — recompile the index from the segment
// directory and swap it in atomically. The daemon keeps answering from the
// stale index for the whole rebuild (degraded mode: /readyz reports it,
// DegradedServes counts it); the swap purges the result cache so no answer
// from the old index outlives it. The rebuild runs outside the admission
// slot pool — it is an operator action, not a query, and must not be
// shedable by the load it is trying to fix.
func (s *server) rebuild(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status := s.serveRebuild(w, r)
	if s.cfg.met != nil {
		s.cfg.met.EndpointObserved(slotRebuild, "rebuild", time.Since(t0), status)
	}
}

func (s *server) serveRebuild(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed (POST)", http.StatusMethodNotAllowed)
		return http.StatusMethodNotAllowed
	}
	if s.cfg.segDir == "" {
		http.Error(w, "no segment directory configured (-segments)", http.StatusConflict)
		return http.StatusConflict
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		http.Error(w, "rebuild already in flight", http.StatusConflict)
		return http.StatusConflict
	}
	defer s.rebuilding.Store(false)

	st, err := cliqdb.CompileSegments(s.cfg.segDir, s.cfg.dbPath)
	if err != nil {
		http.Error(w, fmt.Sprintf("rebuild: %v", err), http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	db, err := cliqdb.Open(s.cfg.dbPath)
	if err != nil {
		http.Error(w, fmt.Sprintf("rebuild: reopen: %v", err), http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	var q queryDB = db
	s.db.Store(&q)
	s.cache.purge()
	if s.cfg.met != nil {
		s.cfg.met.IndexRebuilds.Inc()
	}
	res := jsonResult(map[string]any{
		"cliques": st.Cliques, "vertices": st.Vertices, "bytes": st.Bytes,
		"digest": fmt.Sprintf("%08x", st.Digest),
	})
	writeResult(w, res)
	return res.status
}
