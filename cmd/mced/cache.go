package main

// A bounded LRU result cache with singleflight. Both live behind one lock:
// the cache maps request keys to finished responses, the call table maps
// keys to in-flight computations so concurrent identical queries share one
// execution instead of stampeding the index. Only 200s are cached — errors
// and shed responses must be retried, not replayed.

import (
	"container/list"
	"sync"

	"mce/internal/telemetry"
)

type resultCache struct {
	met *telemetry.Engine
	max int // entries; 0 disables caching (singleflight stays on)

	mu    sync.Mutex
	gen   uint64     // bumped by purge; stale computations are not cached
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	calls map[string]*call
}

type cacheEntry struct {
	key string
	res result
}

type call struct {
	done chan struct{}
	res  result
}

func newResultCache(max int, met *telemetry.Engine) *resultCache {
	if max < 0 {
		max = 0
	}
	return &resultCache{
		met:   met,
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		calls: make(map[string]*call),
	}
}

// get returns the cached response for key, marking it most recently used.
func (c *resultCache) get(key string) (result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return result{}, false
	}
	c.ll.MoveToFront(el)
	if c.met != nil {
		c.met.CacheHits.Inc()
	}
	return el.Value.(*cacheEntry).res, true
}

// do computes the response for key, collapsing concurrent callers onto one
// execution. The winner runs fn and stores a 200 into the cache; everyone
// else blocks on the winner's completion and shares its result.
func (c *resultCache) do(key string, fn func() result) result {
	c.mu.Lock()
	// A racing caller may have finished while we waited for admission.
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		if c.met != nil {
			c.met.CacheHits.Inc()
		}
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res
	}
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		if c.met != nil {
			c.met.SingleflightShared.Inc()
		}
		<-cl.done
		return cl.res
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	gen := c.gen
	c.mu.Unlock()

	if c.met != nil {
		c.met.CacheMisses.Inc()
	}
	cl.res = fn()

	c.mu.Lock()
	delete(c.calls, key)
	if cl.res.status == 200 && c.max > 0 && gen == c.gen {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: cl.res})
		for c.ll.Len() > c.max {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.items, last.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.res
}

// purge empties the cache. Called when a new index is swapped in so no
// response computed against the old one survives the swap. In-flight calls
// are left to finish; their results are not admitted into the cache.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}
