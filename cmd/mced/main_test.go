package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mce/internal/cliqdb"
	"mce/internal/cliqstore"
)

// TestRefusesCheckpointSegments pins the startup guard: -segments pointed
// at a run checkpoint's segment directory (resume state, not the final
// clique family) must fail configuration immediately, before a self-heal
// or /v1/rebuild could bake wrong cliques into an index.
func TestRefusesCheckpointSegments(t *testing.T) {
	ckpt := t.TempDir()
	segDir := filepath.Join(ckpt, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckpt, "journal.mcej"), []byte("j"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-db", filepath.Join(ckpt, "x.cliqdb"), "-segments", segDir, "-listen", "127.0.0.1:0"},
		&out, &errBuf, make(chan os.Signal, 1), make(chan [2]string, 1))
	if code != 2 || !strings.Contains(errBuf.String(), "checkpoint") {
		t.Fatalf("code=%d stderr=%q, want config refusal naming the checkpoint contract", code, errBuf.String())
	}
}

// startDaemon launches run() in a goroutine and waits for it to come up.
// The returned stop function sends one SIGTERM and waits for a clean exit.
func startDaemon(t *testing.T, args []string) (base string, debug string, stop func() int) {
	t.Helper()
	sig := make(chan os.Signal, 2)
	started := make(chan [2]string, 1)
	var out, errBuf bytes.Buffer
	code := make(chan int, 1)
	go func() { code <- run(args, &out, &errBuf, sig, started) }()
	select {
	case addrs := <-started:
		stop = func() int {
			sig <- syscall.SIGTERM
			select {
			case c := <-code:
				return c
			case <-time.After(10 * time.Second):
				t.Fatalf("daemon did not exit after SIGTERM\nstdout: %s\nstderr: %s", out.String(), errBuf.String())
				return -1
			}
		}
		return "http://" + addrs[0], addrs[1], stop
	case c := <-code:
		t.Fatalf("daemon exited with %d before serving\nstdout: %s\nstderr: %s", c, out.String(), errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	return "", "", nil
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
}

type cliquesResp struct {
	Total     int  `json:"total"`
	Truncated bool `json:"truncated"`
	Cliques   []struct {
		ID      uint32  `json:"id"`
		Size    int     `json:"size"`
		Members []int32 `json:"members"`
	} `json:"cliques"`
}

var testCliques = [][]int32{
	{0, 1, 2}, {1, 2, 3}, {2, 3, 4, 5}, {4, 6}, {5, 6, 7},
}

func buildTestIndex(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "test.cliqdb")
	if _, err := cliqdb.Build(testCliques, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServeQueriesEndToEnd(t *testing.T) {
	dbPath := buildTestIndex(t, t.TempDir())
	base, _, stop := startDaemon(t, []string{"-db", dbPath, "-listen", "127.0.0.1:0"})

	// cliques-of: brute-force cross-check for every vertex, including one
	// past the ID space (valid query, empty answer).
	for v := int32(0); v <= 9; v++ {
		var got cliquesResp
		getJSON(t, fmt.Sprintf("%s/v1/cliques-of?v=%d", base, v), &got)
		var want int
		for _, c := range testCliques {
			for _, m := range c {
				if m == v {
					want++
				}
			}
		}
		if got.Total != want || len(got.Cliques) != want {
			t.Fatalf("cliques-of %d: total=%d listed=%d, want %d", v, got.Total, len(got.Cliques), want)
		}
		for _, c := range got.Cliques {
			found := false
			for _, m := range c.Members {
				if m == v {
					found = true
				}
			}
			if !found || c.Size != len(c.Members) {
				t.Fatalf("cliques-of %d returned %+v", v, c)
			}
		}
	}

	// common-cliques: adjacent pair, non-adjacent pair.
	var common cliquesResp
	getJSON(t, base+"/v1/common-cliques?u=2&v=3", &common)
	if common.Total != 2 {
		t.Fatalf("common-cliques(2,3) = %d, want 2", common.Total)
	}
	getJSON(t, base+"/v1/common-cliques?u=0&v=7", &common)
	if common.Total != 0 {
		t.Fatalf("common-cliques(0,7) = %d, want 0", common.Total)
	}

	// top-k: sizes descending, largest first.
	var top cliquesResp
	getJSON(t, base+"/v1/top-k?k=3", &top)
	if len(top.Cliques) != 3 || top.Cliques[0].Size != 4 {
		t.Fatalf("top-k = %+v", top)
	}
	if !sort.SliceIsSorted(top.Cliques, func(i, j int) bool { return top.Cliques[i].Size > top.Cliques[j].Size }) {
		t.Fatalf("top-k not size-descending: %+v", top.Cliques)
	}

	// communities: k=2 percolation connects {0..7} minus nothing — every
	// clique chains through shared edges except the {4,6},{5,6,7} arm,
	// which still shares nodes 4,5,6. Just sanity-check shape and coverage.
	var comms struct {
		Total       int `json:"total"`
		Communities []struct {
			Nodes []int32 `json:"nodes"`
		} `json:"communities"`
	}
	getJSON(t, base+"/v1/communities?k=2", &comms)
	if comms.Total == 0 {
		t.Fatal("communities k=2 found nothing")
	}

	// Bad inputs are 400s, wrong method is 405, unknown path is 404.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{base + "/v1/cliques-of?v=-1", 400},
		{base + "/v1/cliques-of", 400},
		{base + "/v1/common-cliques?u=1", 400},
		{base + "/v1/top-k?k=0", 400},
		{base + "/v1/communities?k=1", 400},
		{base + "/v1/rebuild", 405}, // GET on a POST endpoint
		{base + "/v1/nope", 404},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}

	// Health endpoints.
	for _, p := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d", p, resp.StatusCode)
		}
	}

	if code := stop(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}
}

func TestResultsTruncatedAtMaxResults(t *testing.T) {
	dbPath := buildTestIndex(t, t.TempDir())
	base, _, stop := startDaemon(t, []string{"-db", dbPath, "-listen", "127.0.0.1:0", "-max-results", "1"})
	defer stop()

	var got cliquesResp
	getJSON(t, base+"/v1/cliques-of?v=2", &got) // vertex 2 is in 3 cliques
	if !got.Truncated || len(got.Cliques) != 1 || got.Total != 3 {
		t.Fatalf("max-results=1: truncated=%v listed=%d total=%d", got.Truncated, len(got.Cliques), got.Total)
	}
}

// TestSelfHealsCorruptIndexAtStartup flips a byte in the live index and
// asserts the daemon, given the segment directory, rebuilds and serves
// correct answers instead of failing to start.
func TestSelfHealsCorruptIndexAtStartup(t *testing.T) {
	dir := t.TempDir()
	segDir := filepath.Join(dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, filepath.Join(segDir, "L000-B000000.cliq"), testCliques)
	dbPath := filepath.Join(dir, "test.cliqdb")
	if _, err := cliqdb.CompileSegments(segDir, dbPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(dbPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	base, _, stop := startDaemon(t, []string{"-db", dbPath, "-segments", segDir, "-listen", "127.0.0.1:0"})
	defer stop()
	var got cliquesResp
	getJSON(t, base+"/v1/cliques-of?v=2", &got)
	if got.Total != 3 {
		t.Fatalf("after self-heal, cliques-of 2 = %d, want 3", got.Total)
	}
}

// TestRebuildSwapsInNewSegments verifies the degraded-mode rebuild path:
// new segments appear, POST /v1/rebuild recompiles, and answers reflect the
// new content (including a cached query, proving the swap purged the cache).
func TestRebuildSwapsInNewSegments(t *testing.T) {
	dir := t.TempDir()
	segDir := filepath.Join(dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, filepath.Join(segDir, "L000-B000000.cliq"), testCliques)
	dbPath := filepath.Join(dir, "test.cliqdb")
	if _, err := cliqdb.CompileSegments(segDir, dbPath); err != nil {
		t.Fatal(err)
	}

	base, _, stop := startDaemon(t, []string{"-db", dbPath, "-segments", segDir, "-listen", "127.0.0.1:0"})
	defer stop()

	var got cliquesResp
	getJSON(t, base+"/v1/cliques-of?v=9", &got) // now cached
	if got.Total != 0 {
		t.Fatalf("cliques-of 9 before rebuild = %d, want 0", got.Total)
	}

	writeSegment(t, filepath.Join(segDir, "L001-B000000.cliq"), [][]int32{{8, 9, 10}})
	resp, err := http.Post(base+"/v1/rebuild", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("rebuild = %d: %s", resp.StatusCode, body)
	}

	getJSON(t, base+"/v1/cliques-of?v=9", &got)
	if got.Total != 1 {
		t.Fatalf("cliques-of 9 after rebuild = %d, want 1 (stale cache served?)", got.Total)
	}
}

func writeSegment(t *testing.T, path string, cliques [][]int32) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := cliqstore.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// slowDB is a queryDB whose lookups block for a configured latency — the
// lever the overload and drain tests pull to hold requests in flight.
type slowDB struct{ delay time.Duration }

func (s *slowDB) NumVertices() int32                         { return 1 << 20 }
func (s *slowDB) NumCliques() int                            { return 1 }
func (s *slowDB) CliqueSize(uint32) int                      { return 2 }
func (s *slowDB) Digest() uint32                             { return 0 }
func (s *slowDB) Cliques() [][]int32                         { return [][]int32{{0, 1}} }
func (s *slowDB) AppendClique(dst []int32, _ uint32) []int32 { return append(dst, 0, 1) }

//lint:ignore ctxplumb the sleep is the test fixture: cancellation is exercised one layer up, by the server's per-request deadline around this call
func (s *slowDB) AppendCliquesOf(dst []uint32, _ int32) []uint32 {
	time.Sleep(s.delay)
	return append(dst, 0)
}
func (s *slowDB) AppendCommonCliques(dst []uint32, _, _ int32) []uint32 { return append(dst, 0) }
func (s *slowDB) AppendTopK(dst []uint32, _ int) []uint32               { return append(dst, 0) }

// TestOverloadShedsWith429 drives far more concurrency than -max-inflight
// allows and asserts the contract under overload: excess load is shed with
// 429 + Retry-After, nothing becomes a 5xx, and every admitted request
// completes well inside its deadline.
func TestOverloadShedsWith429(t *testing.T) {
	testHookDB = &slowDB{delay: 60 * time.Millisecond}
	defer func() { testHookDB = nil }()
	base, _, stop := startDaemon(t, []string{
		"-listen", "127.0.0.1:0", "-max-inflight", "2", "-deadline", "5s", "-cache", "0",
	})
	defer stop()

	const clients = 40
	deadline := 5 * time.Second
	var (
		mu        sync.Mutex
		n200      int
		n429      int
		nOther    []int
		latencies []time.Duration
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			// Distinct vertices so neither the cache nor singleflight
			// collapses the load before admission sees it.
			resp, err := http.Get(fmt.Sprintf("%s/v1/cliques-of?v=%d", base, i))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			el := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case 200:
				n200++
				latencies = append(latencies, el)
			case 429:
				n429++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				nOther = append(nOther, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if n429 == 0 {
		t.Fatalf("no 429s across %d clients with max-inflight=2", clients)
	}
	if len(nOther) != 0 {
		t.Fatalf("unexpected statuses under overload: %v", nOther)
	}
	if n200 == 0 {
		t.Fatal("overload shed everything; some requests should be admitted")
	}
	for _, l := range latencies {
		if l > deadline {
			t.Fatalf("admitted request took %v, past the %v deadline", l, deadline)
		}
	}
}

// TestDeadlineReturns504 asserts a query slower than -deadline is answered
// with 504 instead of holding the connection.
func TestDeadlineReturns504(t *testing.T) {
	testHookDB = &slowDB{delay: 2 * time.Second}
	defer func() { testHookDB = nil }()
	base, _, stop := startDaemon(t, []string{
		"-listen", "127.0.0.1:0", "-deadline", "50ms", "-cache", "0", "-drain-timeout", "10s",
	})
	resp, err := http.Get(base + "/v1/cliques-of?v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow query = %d, want 504", resp.StatusCode)
	}
	if code := stop(); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

// TestDrainCompletesInflight sends SIGTERM while a request is in flight and
// asserts the request still completes with 200 and the daemon exits 0.
func TestDrainCompletesInflight(t *testing.T) {
	testHookDB = &slowDB{delay: 400 * time.Millisecond}
	defer func() { testHookDB = nil }()
	base, _, stop := startDaemon(t, []string{
		"-listen", "127.0.0.1:0", "-deadline", "5s", "-drain-timeout", "10s",
	})

	status := make(chan int, 1)
	//lint:ignore golifecycle the status channel is buffered (cap 1) so the send never blocks; the test body always drains it
	go func() {
		resp, err := http.Get(base + "/v1/cliques-of?v=1")
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the handler
	code := stop()
	if got := <-status; got != 200 {
		t.Fatalf("in-flight request finished with %d across drain, want 200", got)
	}
	if code != 0 {
		t.Fatalf("drained exit code %d", code)
	}
}
