// Command mced is the clique query daemon: it serves a compiled cliqdb
// index (see mcefind -index-out) over HTTP/JSON, turning a finished
// enumeration run into an online service — which cliques contain a vertex,
// which cliques two vertices share, the largest cliques, and the k-clique
// communities of the graph.
//
// Usage:
//
//	mced -db run.cliqdb [-segments run.cliqdb.segments] [-listen :9877]
//	     [-deadline 2s] [-max-inflight 64] [-mem-budget-mb 0] [-cache 256]
//	     [-max-results 1000] [-drain-timeout 5s] [-debug-addr :6060]
//
// The daemon is built for production failure modes, not just the happy
// path:
//
//   - The index is verified end to end at open. With -segments (the
//     serving segment directory mcefind -index-out writes beside the
//     index — not a run checkpoint's segments, which hold level-local
//     resume state and are refused), a torn or bit-flipped index is
//     rebuilt automatically; the compile is deterministic, so the healed
//     index is byte-identical to the lost one.
//   - Every query carries a context deadline (-deadline); requests that
//     blow it get 504 instead of holding a connection forever.
//   - Admission control sheds load before it hurts: a bounded in-flight
//     slot pool (-max-inflight) plus an advisory heap budget
//     (-mem-budget-mb, via resguard) turn overload into fast 429s with
//     Retry-After rather than slow 200s or OOM.
//   - A bounded LRU result cache (-cache entries) with singleflight
//     collapses duplicate in-flight queries into one computation.
//   - POST /v1/rebuild recompiles the index from segments while the stale
//     (but checksummed) index keeps answering — degraded, never down.
//   - On SIGINT/SIGTERM the daemon stops accepting requests and finishes
//     the in-flight ones (up to -drain-timeout); a second signal
//     force-exits.
//
// -debug-addr exposes live telemetry at /debug/vars (per-endpoint request
// counts and latency, shed/timeout/cache/rebuild counters, the admitted
// query latency histogram) plus net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mce/internal/cliqdb"
	"mce/internal/resguard"
	"mce/internal/telemetry"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig, nil))
}

// testHookDB, when non-nil, replaces the opened index: run serves it
// directly and never touches -db. It exists so the overload and drain tests
// can push a database with controllable latency through the full stack
// (admission, deadlines, drain); production never sets it.
var testHookDB queryDB

// run is main with its environment injected, so tests can drive the daemon
// end to end: args are the command-line arguments, sig delivers shutdown
// signals, and a non-nil started receives the bound listener and debug
// addresses once the daemon is serving. A second signal on sig force-exits
// without waiting for the drain.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal, started chan<- [2]string) int {
	fs := flag.NewFlagSet("mced", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbPath := fs.String("db", "", "cliqdb index file to serve (required)")
	segments := fs.String("segments", "", "serving segment directory backing self-healing and /v1/rebuild, as written by mcefind -index-out (empty = disabled)")
	listen := fs.String("listen", ":9877", "HTTP address to listen on")
	deadline := fs.Duration("deadline", 2*time.Second, "per-request deadline; queries over it get 504")
	maxInflight := fs.Int("max-inflight", 64, "max queries in flight; excess gets 429 with Retry-After")
	memBudgetMB := fs.Int("mem-budget-mb", 0, "shed new queries while heap exceeds this budget (0 = disabled)")
	cacheSize := fs.Int("cache", 256, "result cache entries (0 = disabled; duplicate in-flight queries still collapse)")
	maxResults := fs.Int("max-results", 1000, "max cliques or communities per response; larger answers are truncated and flagged")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests")
	debugAddr := fs.String("debug-addr", "", "serve JSON telemetry and pprof on this HTTP address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbPath == "" && testHookDB == nil {
		fmt.Fprintln(stderr, "mced: -db is required")
		fs.Usage()
		return 2
	}

	met := telemetry.NewEngine()

	if *segments != "" {
		// A run checkpoint's segment directory holds resume state, not the
		// final clique family; refuse it now rather than at the first
		// self-heal or /v1/rebuild.
		if err := cliqdb.CheckServingSegments(*segments); err != nil {
			fmt.Fprintln(stderr, "mced:", err)
			return 2
		}
	}

	var db queryDB
	if testHookDB != nil {
		db = testHookDB
	} else if *segments != "" {
		real, rebuilt, err := cliqdb.OpenOrRebuild(*dbPath, *segments)
		if err != nil {
			fmt.Fprintln(stderr, "mced:", err)
			return 1
		}
		if rebuilt {
			met.IndexRebuilds.Inc()
			fmt.Fprintf(stderr, "mced: index was missing or corrupt; rebuilt from %s\n", *segments)
		}
		db = real
	} else {
		real, err := cliqdb.Open(*dbPath)
		if err != nil {
			fmt.Fprintln(stderr, "mced:", err)
			return 1
		}
		db = real
	}

	srv := newServer(db, serverConfig{
		met:         met,
		guard:       resguard.New(int64(*memBudgetMB)<<20, met),
		deadline:    *deadline,
		maxInflight: *maxInflight,
		cacheSize:   *cacheSize,
		maxResults:  *maxResults,
		dbPath:      *dbPath,
		segDir:      *segments,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "mced:", err)
		return 1
	}
	fmt.Fprintf(stdout, "mced: serving %d cliques over %d vertices on http://%s/v1/\n",
		db.NumCliques(), db.NumVertices(), ln.Addr())

	boundDebug := ""
	if *debugAddr != "" {
		addr, stopDebug, err := telemetry.ServeDebug(*debugAddr, met.Snapshot)
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, "mced:", err)
			return 1
		}
		defer stopDebug()
		boundDebug = addr
		fmt.Fprintf(stdout, "mced: debug endpoints on http://%s/debug/vars and /debug/pprof/\n", addr)
	}
	if started != nil {
		started <- [2]string{ln.Addr().String(), boundDebug}
	}

	hs := &http.Server{Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "mced:", err)
		return 1
	case s, ok := <-sig:
		if !ok {
			hs.Close()
			return 1
		}
		fmt.Fprintf(stdout, "mced: %v received, draining in-flight requests (repeat to force exit)\n", s)
		forced := make(chan struct{})
		//lint:ignore golifecycle the force-exit watcher lives until the process exits; that is its entire job
		go func() {
			if s, ok := <-sig; ok {
				fmt.Fprintf(stderr, "mced: %v received again, forcing exit\n", s)
				close(forced)
				hs.Close()
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			select {
			case <-forced:
			default:
				fmt.Fprintln(stderr, "mced: drain:", err)
			}
			return 1
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "mced:", err)
			return 1
		}
		fmt.Fprintln(stdout, "mced: drained, bye")
		return 0
	}
}
