package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mce"
	"mce/internal/cliqdb"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeTriangleTail writes the 4-node triangle+tail graph and returns its
// path. Cliques: {0,1,2} and {2,3}.
func writeTriangleTail(t *testing.T) string {
	t.Helper()
	g := mce.FromEdges(4, []mce.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := mce.Save(p, g); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatalf("no args: code %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-badflag", "x"); code != 2 {
		t.Fatalf("bad flag: code %d", code)
	}
	p := writeTriangleTail(t)
	if code, _, _ := runCmd(t, "-algorithm", "Tomita", p); code != 2 {
		t.Fatalf("algorithm without structure accepted")
	}
}

func TestMissingFile(t *testing.T) {
	code, _, errs := runCmd(t, filepath.Join(t.TempDir(), "absent.txt"))
	if code != 1 || errs == "" {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
}

func TestEnumerateOutput(t *testing.T) {
	p := writeTriangleTail(t)
	code, out, errs := runCmd(t, p)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("out = %q", out)
	}
}

func TestCountAndMinSize(t *testing.T) {
	p := writeTriangleTail(t)
	code, out, _ := runCmd(t, "-count", p)
	if code != 0 || strings.TrimSpace(out) != "2" {
		t.Fatalf("count out = %q", out)
	}
	code, out, _ = runCmd(t, "-count", "-min", "3", p)
	if code != 0 || strings.TrimSpace(out) != "1" {
		t.Fatalf("min-filtered count out = %q", out)
	}
}

func TestStatsToStderr(t *testing.T) {
	p := writeTriangleTail(t)
	code, _, errs := runCmd(t, "-stats", "-count", p)
	if code != 0 || !strings.Contains(errs, "cliques=2") {
		t.Fatalf("stats = %q", errs)
	}
}

func TestPinnedCombo(t *testing.T) {
	p := writeTriangleTail(t)
	code, out, errs := runCmd(t, "-algorithm", "Eppstein", "-structure", "Lists", "-count", p)
	if code != 0 || strings.TrimSpace(out) != "2" {
		t.Fatalf("code=%d out=%q errs=%q", code, out, errs)
	}
	code, _, _ = runCmd(t, "-algorithm", "NoSuch", "-structure", "Lists", "-count", p)
	if code == 0 {
		t.Fatal("bad algorithm accepted")
	}
}

func TestCommunitiesOutput(t *testing.T) {
	// Two triangles sharing node 2.
	g := mce.FromEdges(5, []mce.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 2, V: 4},
	})
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := mce.Save(p, g); err != nil {
		t.Fatal(err)
	}
	code, out, errs := runCmd(t, "-communities", "3", p)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	if strings.Count(out, "community ") != 2 {
		t.Fatalf("communities out = %q", out)
	}
	if code, _, _ := runCmd(t, "-communities", "1", p); code != 1 {
		t.Fatal("k=1 accepted")
	}
}

func TestLabelsFlag(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "named.txt")
	content := "alice bob\nbob carol\nalice carol\n"
	if err := writeFile(p, content); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCmd(t, "-labels", p)
	if code != 0 || !strings.Contains(out, "alice") {
		t.Fatalf("labels out = %q", out)
	}
}

func TestPartitionDirInput(t *testing.T) {
	g := mce.GenerateSocialNetwork(120, 4, 0.6, 3)
	dir := filepath.Join(t.TempDir(), "parts")
	if err := mce.SavePartitioned(dir, g, 3); err != nil {
		t.Fatal(err)
	}
	code, out, errs := runCmd(t, "-count", dir)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	n, err := strconv.Atoi(strings.TrimSpace(out))
	if err != nil || n <= 0 {
		t.Fatalf("count out = %q", out)
	}
}

func TestDistributedFlag(t *testing.T) {
	addrs, stop, err := mce.StartLocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	p := writeTriangleTail(t)
	code, out, errs := runCmd(t, "-count", "-workers", strings.Join(addrs, ","), p)
	if code != 0 || strings.TrimSpace(out) != "2" {
		t.Fatalf("code=%d out=%q errs=%q", code, out, errs)
	}
	if code, _, _ := runCmd(t, "-count", "-workers", "127.0.0.1:1", p); code != 1 {
		t.Fatal("unreachable worker accepted")
	}
}

func writeFile(p, content string) error {
	return os.WriteFile(p, []byte(content), 0o644)
}

func TestStreamAndFormats(t *testing.T) {
	p := writeTriangleTail(t)
	code, out, errs := runCmd(t, "-stream", "-stats", p)
	if code != 0 {
		t.Fatalf("stream: code=%d errs=%q", code, errs)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("stream out = %q", out)
	}
	if !strings.Contains(errs, "streamed 2 cliques") {
		t.Fatalf("stream stats = %q", errs)
	}

	code, out, _ = runCmd(t, "-format", "jsonl", p)
	if code != 0 || !strings.Contains(out, `["0","1","2"]`) {
		t.Fatalf("jsonl out = %q", out)
	}
	code, out, _ = runCmd(t, "-stream", "-format", "jsonl", p)
	if code != 0 || !strings.Contains(out, `["2","3"]`) {
		t.Fatalf("stream jsonl out = %q", out)
	}

	if code, _, _ := runCmd(t, "-format", "xml", p); code != 2 {
		t.Fatal("unknown format accepted")
	}
	if code, _, _ := runCmd(t, "-stream", "-count", p); code != 2 {
		t.Fatal("stream+count accepted")
	}
	if code, _, _ := runCmd(t, "-stream", "-communities", "3", p); code != 2 {
		t.Fatal("stream+communities accepted")
	}
}

func TestDiskGraphInput(t *testing.T) {
	g := mce.FromEdges(4, []mce.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	p := filepath.Join(t.TempDir(), "g.mceg")
	if err := mce.SaveDiskGraph(p, g); err != nil {
		t.Fatal(err)
	}
	code, out, errs := runCmd(t, "-count", "-stats", p)
	if code != 0 || strings.TrimSpace(out) != "2" {
		t.Fatalf("mceg count: code=%d out=%q errs=%q", code, out, errs)
	}
	if !strings.Contains(errs, "out-of-core") {
		t.Fatalf("mceg stats = %q", errs)
	}
	code, out, _ = runCmd(t, "-format", "jsonl", p)
	if code != 0 || !strings.Contains(out, `["0","1","2"]`) {
		t.Fatalf("mceg jsonl out = %q", out)
	}
	if code, _, _ := runCmd(t, filepath.Join(t.TempDir(), "absent.mceg")); code != 1 {
		t.Fatal("missing disk graph accepted")
	}
}

func TestStatsTelemetryLines(t *testing.T) {
	p := writeTriangleTail(t)
	code, _, errs := runCmd(t, "-stats", "-count", p)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if !strings.Contains(errs, "telemetry: recursion-nodes=") {
		t.Fatalf("no telemetry summary in stats: %q", errs)
	}
	if !strings.Contains(errs, "combo ") {
		t.Fatalf("no combo distribution in stats: %q", errs)
	}
	if !strings.Contains(errs, "kernel=") {
		t.Fatalf("no kernel/border/visited in level stats: %q", errs)
	}
}

func TestDebugAddrFlag(t *testing.T) {
	p := writeTriangleTail(t)
	code, _, errs := runCmd(t, "-debug-addr", "127.0.0.1:0", "-count", p)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if !strings.Contains(errs, "debug endpoints on http://") {
		t.Fatalf("no debug banner: %q", errs)
	}
	// An unusable address fails fast instead of running without telemetry.
	code, _, _ = runCmd(t, "-debug-addr", "256.256.256.256:99999", "-count", p)
	if code != 1 {
		t.Fatalf("bad debug addr exit = %d, want 1", code)
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	p := writeTriangleTail(t)
	if code, _, errs := runCmd(t, "-resume", p); code != 2 || !strings.Contains(errs, "-resume needs -checkpoint") {
		t.Fatalf("-resume alone: code %d, errs %q", code, errs)
	}
	dir := filepath.Join(t.TempDir(), "ck")
	if code, _, errs := runCmd(t, "-checkpoint", dir, "-stream", p); code != 2 || !strings.Contains(errs, "-stream") {
		t.Fatalf("-checkpoint with -stream: code %d, errs %q", code, errs)
	}
	if code, _, errs := runCmd(t, "-checkpoint", dir, "-resume", p); code != 1 || !strings.Contains(errs, "no run journal") {
		t.Fatalf("-resume without journal: code %d, errs %q", code, errs)
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	p := writeTriangleTail(t)
	dir := filepath.Join(t.TempDir(), "ck")
	code, first, errs := runCmd(t, "-checkpoint", dir, p)
	if code != 0 {
		t.Fatalf("checkpointed run: code %d, errs %q", code, errs)
	}
	if !mce.HasCheckpoint(dir) {
		t.Fatal("run left no journal behind")
	}
	code, second, errs := runCmd(t, "-checkpoint", dir, "-resume", "-stats", p)
	if code != 0 {
		t.Fatalf("resume: code %d, errs %q", code, errs)
	}
	if second != first {
		t.Fatalf("resume output %q differs from original %q", second, first)
	}
	if !strings.Contains(errs, "resuming from checkpoint") {
		t.Fatalf("no resume banner: %q", errs)
	}
	if !strings.Contains(errs, "resumed") || !strings.Contains(errs, "from checkpoint") {
		t.Fatalf("stats missing resumed-blocks line: %q", errs)
	}
}

// TestIndexOutCompilesQueryableIndex runs the full pipeline the serving
// story promises: enumerate a graph, compile -index-out, open the index
// with cliqdb and cross-check its answers against the printed cliques.
func TestIndexOutCompilesQueryableIndex(t *testing.T) {
	p := writeTriangleTail(t)
	idx := filepath.Join(t.TempDir(), "run.cliqdb")
	code, out, errs := runCmd(t, "-index-out", idx, p)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	if !strings.Contains(errs, "serve with: mced -db") {
		t.Fatalf("no index summary on stderr: %q", errs)
	}
	db, err := cliqdb.Open(idx)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if db.NumCliques() != len(lines) {
		t.Fatalf("index has %d cliques, run printed %d", db.NumCliques(), len(lines))
	}
	// Vertex 2 is in both cliques ({0,1,2} and {2,3}), vertex 3 in one.
	if n := db.CliqueCount(2); n != 2 {
		t.Fatalf("CliqueCount(2) = %d, want 2", n)
	}
	if n := db.CliqueCount(3); n != 1 {
		t.Fatalf("CliqueCount(3) = %d, want 1", n)
	}

	// -index-out also writes the serving segments the hint names, and a
	// rebuild from them reproduces the index byte-identically — the
	// self-healing guarantee over the real pipeline's artifacts, not
	// test-authored segments.
	segs := idx + ".segments"
	if !strings.Contains(errs, "-segments "+segs) {
		t.Fatalf("serve hint does not name the serving segments: %q", errs)
	}
	healed := filepath.Join(t.TempDir(), "healed.cliqdb")
	if _, err := cliqdb.CompileSegments(segs, healed); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(healed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("index rebuilt from serving segments is not byte-identical to the original")
	}
}

func TestIndexOutRefusedForStreamAndOutOfCore(t *testing.T) {
	p := writeTriangleTail(t)
	idx := filepath.Join(t.TempDir(), "run.cliqdb")
	if code, _, errs := runCmd(t, "-stream", "-index-out", idx, p); code != 2 || !strings.Contains(errs, "-index-out") {
		t.Fatalf("stream+index-out: code=%d errs=%q", code, errs)
	}
	if code, _, errs := runCmd(t, "-index-out", idx, "g.mceg"); code != 2 || !strings.Contains(errs, "-index-out") {
		t.Fatalf("mceg+index-out: code=%d errs=%q", code, errs)
	}
}
