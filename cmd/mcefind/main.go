// Command mcefind enumerates all maximal cliques of a network stored as an
// edge list (SNAP style), as the paper's ⟨n1, e, n2⟩ triple format
// (".triples" extension), or as a directory of part-*.triples files (the
// distributed layout of §6.2).
//
// Usage:
//
//	mcefind [flags] <graph-file-or-partition-dir>
//
//	-m int            block size m (default: ratio × max degree)
//	-ratio float      m/d ratio when -m is not given (default 0.5)
//	-algorithm s      pin one MCE algorithm (BKPivot|Tomita|Eppstein|XPivot)
//	-structure s      pin one structure (Matrix|Lists|BitSets)
//	-workers list     comma-separated worker addresses for distributed runs
//	-task-timeout d   per-task round-trip deadline (default: derived; <0 disables)
//	-task-retries k   transport-failure budget per block before it is
//	                  declared poison (default 3; <0 unlimited)
//	-reconnect        auto-reconnect dead workers with backoff
//	-hedge            speculatively re-dispatch straggling blocks to another
//	                  worker; first result wins, output unchanged
//	-mem-budget-mb n  pause block dispatch while the heap exceeds n MiB
//	                  (backpressure instead of OOM; 0 = no budget)
//	-p int            local parallelism (default GOMAXPROCS)
//	-min int          minimum clique size to print (default 1)
//	-count            print only the number of cliques
//	-stats            print decomposition statistics to stderr
//	-labels           print original node labels instead of dense IDs
//	-communities k    print k-clique communities instead of cliques
//	-format f         clique output format: text (default) or jsonl
//	-stream           stream cliques as they are found (bounded memory)
//	-checkpoint DIR   journal run progress into DIR and resume completed
//	                  blocks from it on restart (crash-safe runs)
//	-resume           require prior state in -checkpoint DIR (refuse to
//	                  start a run from scratch)
//	-skip-poison      record poison-task verdicts and keep going instead of
//	                  failing the run; completing with skips exits 3
//	-index-out PATH   also compile the clique set into a cliqdb index at
//	                  PATH plus serving segments at PATH.segments (serve
//	                  with mced); dense IDs, not -labels
//	-debug-addr a     serve live JSON telemetry (/debug/vars) and pprof
//	                  (/debug/pprof/) on this HTTP address while running
//
// Output: one clique per line, members space-separated (or one JSON array
// per line with -format jsonl).
//
// Exit codes: 0 on success, 1 on errors, 2 on usage errors, 3 when the run
// completed but skipped poison tasks (-skip-poison) — the clique set is
// incomplete — 4 when the -checkpoint directory is refused (it belongs to
// a different graph or different options, or its journal is unreadable —
// point -checkpoint at a fresh directory or re-run the original command),
// and 130 when interrupted by SIGINT/SIGTERM (with -checkpoint, progress
// is saved and the resume command is printed; with -workers, the
// per-worker health summary is printed too).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mce"
	"mce/internal/cliqdb"
	"mce/internal/cliqstore"
	"mce/internal/telemetry"
)

// Exit codes beyond the conventional 0/1/2.
const (
	// exitIncomplete: the run finished but poison-task skips left the
	// clique set incomplete (-skip-poison).
	exitIncomplete = 3
	// exitCheckpointRefused: the -checkpoint directory belongs to a
	// different run (or its journal is unreadable) and resuming from it
	// would be wrong; nothing was computed.
	exitCheckpointRefused = 4
	// exitInterrupted mirrors the shell convention for SIGINT (128+2).
	exitInterrupted = 130
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcefind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m           = fs.Int("m", 0, "block size (0 = derive from -ratio)")
		ratio       = fs.Float64("ratio", 0, "m/d ratio (0 = default 0.5)")
		algorithm   = fs.String("algorithm", "", "pin the MCE algorithm")
		structure   = fs.String("structure", "", "pin the adjacency structure")
		workers     = fs.String("workers", "", "comma-separated worker addresses")
		taskTimeout = fs.Duration("task-timeout", 0, "per-task round-trip deadline (0 = derived, negative = disabled)")
		taskRetries = fs.Int("task-retries", 0, "per-block transport-failure budget (0 = default 3, negative = unlimited)")
		reconnect   = fs.Bool("reconnect", false, "auto-reconnect dead workers with exponential backoff")
		hedge       = fs.Bool("hedge", false, "speculatively re-dispatch straggling blocks (first result wins)")
		memBudgetMB = fs.Int64("mem-budget-mb", 0, "pause dispatch while the heap exceeds this many MiB (0 = no budget)")
		par         = fs.Int("p", 0, "local parallelism")
		intraPar    = fs.Int("intra-par", 0, "work-stealing workers inside each block enumeration (0/1 = sequential; output is identical at any width)")
		minSize     = fs.Int("min", 1, "minimum clique size to print")
		countOnly   = fs.Bool("count", false, "print only the clique count")
		stats       = fs.Bool("stats", false, "print run statistics to stderr")
		labels      = fs.Bool("labels", false, "print original labels")
		commK       = fs.Int("communities", 0, "print k-clique communities for this k instead of cliques")
		format      = fs.String("format", "text", "clique output format: text or jsonl")
		stream      = fs.Bool("stream", false, "stream cliques as they are found (bounded memory)")
		checkpoint  = fs.String("checkpoint", "", "journal run progress into this directory and resume from it")
		resume      = fs.Bool("resume", false, "require prior run state in the -checkpoint directory")
		skipPoison  = fs.Bool("skip-poison", false, "skip poison tasks instead of failing the run (exit 3 on skips)")
		indexOut    = fs.String("index-out", "", "compile the clique set into a cliqdb index at this path (serve with mced)")
		debugAddr   = fs.String("debug-addr", "", "serve JSON telemetry and pprof on this HTTP address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcefind [flags] <graph-file-or-partition-dir>")
		fs.Usage()
		return 2
	}

	if *format != "text" && *format != "jsonl" {
		fmt.Fprintf(stderr, "mcefind: unknown format %q (want text or jsonl)\n", *format)
		return 2
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "mcefind: -resume needs -checkpoint DIR")
		return 2
	}
	if *checkpoint != "" && *stream {
		fmt.Fprintln(stderr, "mcefind: -checkpoint cannot combine with -stream (a resume would re-emit cliques already printed)")
		return 2
	}
	if *indexOut != "" && *stream {
		fmt.Fprintln(stderr, "mcefind: -index-out cannot combine with -stream (the index compiler needs the full clique set in memory)")
		return 2
	}
	if *resume && !mce.HasCheckpoint(*checkpoint) {
		fmt.Fprintf(stderr, "mcefind: -resume: no run journal in %s\n", *checkpoint)
		return 1
	}

	// Disk graphs (SaveDiskGraph / mcegen) run fully out of core.
	if strings.HasSuffix(fs.Arg(0), ".mceg") {
		if *checkpoint != "" {
			fmt.Fprintln(stderr, "mcefind: -checkpoint is not supported for out-of-core (.mceg) runs")
			return 2
		}
		if *indexOut != "" {
			fmt.Fprintln(stderr, "mcefind: -index-out is not supported for out-of-core (.mceg) runs")
			return 2
		}
		return runOutOfCore(fs.Arg(0), *m, *ratio, *minSize, *countOnly, *stats, *format, stdout, stderr)
	}

	g, labelMap, err := loadAny(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "mcefind:", err)
		return 1
	}

	var opts []mce.Option
	if *m > 0 {
		opts = append(opts, mce.WithBlockSize(*m))
	}
	if *ratio > 0 {
		opts = append(opts, mce.WithBlockRatio(*ratio))
	}
	if *algorithm != "" || *structure != "" {
		if *algorithm == "" || *structure == "" {
			fmt.Fprintln(stderr, "mcefind: -algorithm and -structure must be given together")
			return 2
		}
		opts = append(opts, mce.WithAlgorithm(*algorithm, *structure))
	}
	if *hedge && *workers == "" {
		fmt.Fprintln(stderr, "mcefind: -hedge needs -workers (straggler hedging is a distributed-run feature)")
		return 2
	}
	// healthSummary captures the per-worker health report of a distributed
	// run; the interrupt and degraded-completion paths print it.
	var healthSummary *mce.HealthReport
	if *workers != "" {
		opts = append(opts, mce.WithWorkers(strings.Split(*workers, ",")...))
		if *taskTimeout != 0 {
			opts = append(opts, mce.WithTaskTimeout(*taskTimeout))
		}
		if *taskRetries != 0 {
			opts = append(opts, mce.WithTaskRetries(*taskRetries))
		}
		if *reconnect {
			opts = append(opts, mce.WithAutoReconnect())
		}
		if *hedge {
			opts = append(opts, mce.WithHedgedDispatch())
		}
		opts = append(opts, mce.WithWorkerHealthReport(func(r mce.HealthReport) {
			healthSummary = &r
		}))
		// A degraded start (some workers unreachable) proceeds on the
		// survivors, but say so instead of just running slow.
		opts = append(opts, mce.WithWorkerReport(func(r mce.DialReport) {
			for _, f := range r.Failures {
				fmt.Fprintf(stderr, "mcefind: warning: worker %s unreachable: %v\n", f.Addr, f.Err)
			}
			if r.Degraded() {
				fmt.Fprintf(stderr, "mcefind: warning: degraded start: %d of %d worker addresses reachable\n",
					len(r.Addrs)-len(r.Failures), len(r.Addrs))
			}
		}))
	}
	if *par > 0 {
		opts = append(opts, mce.WithParallelism(*par))
	}
	if *intraPar > 0 {
		opts = append(opts, mce.WithIntraBlockParallelism(*intraPar))
	}
	if *memBudgetMB > 0 {
		opts = append(opts, mce.WithMemoryBudget(*memBudgetMB<<20))
	}
	if *checkpoint != "" {
		if mce.HasCheckpoint(*checkpoint) {
			fmt.Fprintf(stderr, "mcefind: resuming from checkpoint %s\n", *checkpoint)
		}
		opts = append(opts, mce.WithCheckpoint(*checkpoint),
			// A mid-run checkpoint write failure (full disk, yanked
			// permissions) is degraded, not fatal: warn and keep going.
			mce.WithCheckpointWarning(func(err error) {
				fmt.Fprintf(stderr, "mcefind: warning: checkpointing disabled (%v); the run continues without crash safety\n", err)
			}))
	}
	var poisonVerdicts []mce.PoisonVerdict
	if *skipPoison {
		opts = append(opts, mce.WithSkipPoisonTasks(),
			mce.WithPoisonReport(func(vs []mce.PoisonVerdict) { poisonVerdicts = vs }))
	}

	// The debug server and the run share one engine, so /debug/vars shows
	// the enumeration's live counters; -stats reuses the same snapshot.
	var eng *mce.TelemetryEngine
	if *debugAddr != "" || *stats {
		eng = mce.NewTelemetryEngine()
		opts = append(opts, mce.WithTelemetryEngine(eng))
	}
	if *debugAddr != "" && eng != nil {
		addr, stopDebug, err := telemetry.ServeDebug(*debugAddr, eng.Snapshot)
		if err != nil {
			fmt.Fprintln(stderr, "mcefind:", err)
			return 1
		}
		defer stopDebug()
		fmt.Fprintf(stderr, "mcefind: debug endpoints on http://%s/debug/vars and /debug/pprof/\n", addr)
	}

	name := func(v int32) string {
		if *labels {
			return labelMap.Label(v)
		}
		return fmt.Sprint(v)
	}

	if *stream {
		if *commK > 0 || *countOnly {
			fmt.Fprintln(stderr, "mcefind: -stream cannot combine with -communities or -count")
			return 2
		}
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		st, err := mce.EnumerateStream(g, func(c []int32, _ int) {
			if len(c) < *minSize {
				return
			}
			writeClique(w, c, *format, name)
		}, opts...)
		if err != nil {
			fmt.Fprintln(stderr, "mcefind:", err)
			return 1
		}
		if *stats {
			fmt.Fprintf(stderr, "streamed %d cliques over %d levels\n",
				st.TotalCliques, len(st.Levels))
			printTelemetry(stderr, st.Telemetry)
		}
		return 0
	}

	// SIGINT/SIGTERM cancel the run cleanly: in-flight batches stop, and
	// with -checkpoint every completed block is already durable, so the
	// interrupted run is resumable from exactly where it died.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	t0 := time.Now()
	res, err := mce.EnumerateContext(ctx, g, opts...)
	if err != nil {
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			fmt.Fprintln(stderr, "mcefind: interrupted")
			printHealthSummary(stderr, healthSummary)
			if *checkpoint != "" {
				fmt.Fprintf(stderr, "mcefind: progress saved; resume with: mcefind -checkpoint %s -resume %s\n",
					*checkpoint, fs.Arg(0))
			}
			return exitInterrupted
		}
		if errors.Is(err, mce.ErrCheckpointMismatch) {
			fmt.Fprintln(stderr, "mcefind:", err)
			fmt.Fprintf(stderr, "mcefind: refusing to resume from %s; point -checkpoint at a fresh directory, or re-run with the original graph and options\n",
				*checkpoint)
			return exitCheckpointRefused
		}
		fmt.Fprintln(stderr, "mcefind:", err)
		return 1
	}
	elapsed := time.Since(t0)
	if res.Stats.CheckpointDegraded {
		fmt.Fprintf(stderr, "mcefind: warning: the run completed but checkpointing was disabled mid-run; %s holds only a partial journal\n",
			*checkpoint)
	}
	if healthSummary != nil && healthSummary.Degraded() {
		printHealthSummary(stderr, healthSummary)
	}

	if *stats {
		s := res.Stats
		fmt.Fprintf(stderr, "nodes=%d edges=%d maxdeg=%d m=%d levels=%d cliques=%d hub-only=%d fallback=%v elapsed=%v\n",
			g.N(), g.M(), s.MaxDegree, s.BlockSize, len(s.Levels),
			s.TotalCliques, s.HubCliques, s.CoreFallback, elapsed.Round(time.Millisecond))
		if s.ResumedBlocks > 0 {
			fmt.Fprintf(stderr, "resumed %d blocks from checkpoint\n", s.ResumedBlocks)
		}
		for i, lvl := range s.Levels {
			fmt.Fprintf(stderr, "  level %d: nodes=%d feasible=%d hubs=%d blocks=%d kernel=%d border=%d visited=%d cliques=%d decomp=%v analysis=%v\n",
				i, lvl.Nodes, lvl.Feasible, lvl.Hubs, lvl.Blocks,
				lvl.Kernel, lvl.Border, lvl.Visited, lvl.Cliques,
				lvl.Decomp.Round(time.Millisecond), lvl.Analysis.Round(time.Millisecond))
		}
		printTelemetry(stderr, s.Telemetry)
	}

	if *indexOut != "" {
		if res.Stats.SkippedBlocks > 0 {
			// An index silently missing cliques would serve wrong answers
			// forever; an incomplete run gets no index.
			fmt.Fprintf(stderr, "mcefind: not writing %s: %d poison-task skip(s) left the clique set incomplete\n",
				*indexOut, res.Stats.SkippedBlocks)
		} else {
			ist, err := cliqdb.Build(res.Cliques, *indexOut)
			if err != nil {
				fmt.Fprintln(stderr, "mcefind:", err)
				return 1
			}
			// The serving segments beside the index back mced's self-healing
			// with the final clique family. A run checkpoint's segments can't:
			// they hold level-local, pre-filter resume state, and cliqdb
			// refuses to compile them.
			segOut := *indexOut + ".segments"
			if err := cliqstore.WriteDir(segOut, res.Cliques); err != nil {
				fmt.Fprintln(stderr, "mcefind:", err)
				return 1
			}
			fmt.Fprintf(stderr, "mcefind: index %s: %d cliques over %d vertices, %d bytes, digest %08x; serve with: mced -db %s -segments %s\n",
				*indexOut, ist.Cliques, ist.Vertices, ist.Bytes, ist.Digest, *indexOut, segOut)
		}
	}

	// finish reports poison-task skips and picks the exit code: a run that
	// completed but skipped blocks has an incomplete clique set, which must
	// not look like success to scripts.
	finish := func() int {
		if res.Stats.SkippedBlocks == 0 {
			return 0
		}
		for _, v := range poisonVerdicts {
			fmt.Fprintf(stderr, "mcefind: poison task skipped: block %d failed on %d workers: %s\n",
				v.Block, v.Attempts, strings.Join(v.Causes, "; "))
		}
		fmt.Fprintf(stderr, "mcefind: completed with %d poison-task skip(s); the clique set is incomplete\n",
			res.Stats.SkippedBlocks)
		return exitIncomplete
	}

	if *commK > 0 {
		comms, err := mce.Communities(res, *commK)
		if err != nil {
			fmt.Fprintln(stderr, "mcefind:", err)
			return 1
		}
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		for i, c := range comms {
			fmt.Fprintf(w, "community %d (%d nodes, %d cliques):", i, len(c.Nodes), c.Cliques)
			for _, v := range c.Nodes {
				fmt.Fprintf(w, " %s", name(v))
			}
			fmt.Fprintln(w)
		}
		return finish()
	}

	if *countOnly {
		printed := 0
		for _, c := range res.Cliques {
			if len(c) >= *minSize {
				printed++
			}
		}
		fmt.Fprintln(stdout, printed)
		return finish()
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	for _, c := range res.Cliques {
		if len(c) < *minSize {
			continue
		}
		writeClique(w, c, *format, name)
	}
	return finish()
}

// printHealthSummary renders the per-worker health report of a distributed
// run: which workers the run leaned on, which it benched, and why.
func printHealthSummary(w io.Writer, r *mce.HealthReport) {
	if r == nil || len(r.Workers) == 0 {
		return
	}
	fmt.Fprintln(w, "mcefind: worker health:")
	for _, line := range strings.Split(r.String(), "\n") {
		fmt.Fprintf(w, "  %s\n", line)
	}
}

// printTelemetry summarises a run's final telemetry snapshot on stderr:
// engine counters, the per-block latency distribution and the decision
// tree's combo pick distribution.
func printTelemetry(w io.Writer, s *mce.TelemetrySnapshot) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "telemetry: recursion-nodes=%d pivots=%d filter=%v filtered-hub-cliques=%d\n",
		s.RecursionNodes, s.PivotSelections,
		time.Duration(s.FilterNs).Round(time.Microsecond), s.HubCliquesFiltered)
	if s.BlockNs.Count > 0 {
		fmt.Fprintf(w, "telemetry: block latency mean=%v p50=%v p95=%v max=%v\n",
			time.Duration(s.BlockNs.Mean()).Round(time.Microsecond),
			time.Duration(s.BlockNs.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(s.BlockNs.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(s.BlockNs.Max).Round(time.Microsecond))
	}
	if s.BytesSent > 0 || s.BytesReceived > 0 {
		fmt.Fprintf(w, "telemetry: wire sent=%dB received=%dB round-trips=%d retries=%d reconnects=%d\n",
			s.BytesSent, s.BytesReceived, s.RoundTripNs.Count, s.TaskRetries, s.Reconnects)
	}
	for _, c := range s.Combos {
		fmt.Fprintf(w, "  combo %s: picks=%d blocks=%d total=%v\n",
			c.Combo, c.Picks, c.Blocks, time.Duration(c.TotalNs).Round(time.Microsecond))
	}
}

// writeClique renders one clique in the selected format: space-separated
// members ("text") or a JSON array of member labels per line ("jsonl").
func writeClique(w io.Writer, c []int32, format string, name func(int32) string) {
	if format == "jsonl" {
		names := make([]string, len(c))
		for i, v := range c {
			names[i] = name(v)
		}
		data, err := json.Marshal(names)
		if err != nil {
			return // string slices cannot fail to marshal
		}
		w.Write(data)
		io.WriteString(w, "\n")
		return
	}
	for i, v := range c {
		if i > 0 {
			io.WriteString(w, " ")
		}
		io.WriteString(w, name(v))
	}
	io.WriteString(w, "\n")
}

// runOutOfCore streams cliques straight from a disk-resident graph.
func runOutOfCore(path string, m int, ratio float64, minSize int, countOnly, stats bool, format string, stdout, stderr io.Writer) int {
	var opts []mce.Option
	if m > 0 {
		opts = append(opts, mce.WithBlockSize(m))
	}
	if ratio > 0 {
		opts = append(opts, mce.WithBlockRatio(ratio))
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	idName := func(v int32) string { return fmt.Sprint(v) }
	count := 0
	st, err := mce.EnumerateOutOfCore(path, func(c []int32, _ int) {
		if len(c) < minSize {
			return
		}
		count++
		if !countOnly {
			writeClique(w, c, format, idName)
		}
	}, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "mcefind:", err)
		return 1
	}
	if countOnly {
		fmt.Fprintln(w, count)
	}
	if stats {
		fmt.Fprintf(stderr, "out-of-core: %d cliques (%d hub-only), %d blocks, %d disk reads\n",
			st.TotalCliques, st.HubCliques, st.Blocks, st.DiskReads)
	}
	return 0
}

// loadAny loads a single graph file, or merges a partition directory.
func loadAny(path string) (*mce.Graph, *mce.LabelMap, error) {
	st, err := os.Stat(path)
	if err == nil && st.IsDir() {
		return mce.LoadPartitioned(path)
	}
	return mce.Load(path)
}
