package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mce"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeGraph(t *testing.T) string {
	t.Helper()
	g := mce.GenerateSocialNetwork(200, 4, 0.6, 7)
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := mce.Save(p, g); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUsage(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no args accepted")
	}
	if code, _, _ := runCmd(t, "-nope"); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

func TestMissingFile(t *testing.T) {
	if code, _, _ := runCmd(t, filepath.Join(t.TempDir(), "nope")); code != 1 {
		t.Fatal("missing file accepted")
	}
}

func TestStatsOutput(t *testing.T) {
	p := writeGraph(t)
	code, out, errs := runCmd(t, p)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	for _, want := range []string{"nodes", "degeneracy", "d*", "clustering", "alpha", "degree histogram", "m/d", "hub%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output misses %q:\n%s", want, out)
		}
	}
	// Default ratios → 5 split rows.
	if got := strings.Count(out, "0."); got < 5 {
		t.Fatalf("expected ratio rows, out=\n%s", out)
	}
}

func TestCustomRatios(t *testing.T) {
	p := writeGraph(t)
	code, out, _ := runCmd(t, "-ratios", "0.5", p)
	if code != 0 || !strings.Contains(out, "0.50") {
		t.Fatalf("custom ratio output: %q", out)
	}
}

func TestBadRatio(t *testing.T) {
	p := writeGraph(t)
	if code, _, _ := runCmd(t, "-ratios", "2.0", p); code != 2 {
		t.Fatal("ratio > 1 accepted")
	}
	if code, _, _ := runCmd(t, "-ratios", "abc", p); code != 2 {
		t.Fatal("non-numeric ratio accepted")
	}
}
