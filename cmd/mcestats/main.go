// Command mcestats prints the sparsity profile of a network: the metrics
// the paper's machinery is driven by — degeneracy (Theorem 1's termination
// measure), d* (the decision-tree feature of §4), the degree distribution
// (Figure 6) and the feasible/hub split for a range of block sizes.
//
// Usage:
//
//	mcestats [-ratios 0.9,0.5,0.1] <graph-file>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mce"
	"mce/internal/experiments"
	"mce/internal/quality"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcestats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ratios := fs.String("ratios", "0.9,0.7,0.5,0.3,0.1", "m/d ratios for the feasible/hub split")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcestats [flags] <graph-file>")
		fs.Usage()
		return 2
	}

	g, _, err := mce.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "mcestats:", err)
		return 1
	}

	s := mce.GraphMetrics(g)
	fmt.Fprintf(stdout, "nodes        %d\n", s.Nodes)
	fmt.Fprintf(stdout, "edges        %d\n", s.Edges)
	fmt.Fprintf(stdout, "max degree   %d\n", s.MaxDegree)
	fmt.Fprintf(stdout, "density      %.6f\n", s.Density)
	fmt.Fprintf(stdout, "degeneracy   %d\n", s.Degeneracy)
	fmt.Fprintf(stdout, "d*           %d\n", s.DStar)
	fmt.Fprintf(stdout, "clustering   %.4f\n", quality.GlobalClustering(g))
	if alpha, tail := experiments.PowerLawAlpha(g, 0); tail > 0 {
		fmt.Fprintf(stdout, "alpha (MLE)  %.2f (tail of %d nodes)\n", alpha, tail)
	}

	// Truncated degree distribution, Figure 6 style.
	degs := mce.Degrees(g)
	counts := make([]int, 22)
	low := 0
	for _, d := range degs {
		switch {
		case d <= 20:
			counts[d]++
			if d >= 1 {
				low++
			}
		default:
			counts[21]++
		}
	}
	fmt.Fprintf(stdout, "degree histogram (0..20, >20): %v\n", counts)
	if s.Nodes > 0 {
		fmt.Fprintf(stdout, "low-degree share (1..20): %.1f%%\n", 100*float64(low)/float64(s.Nodes))
	}

	// Feasible/hub split per requested block ratio.
	fmt.Fprintf(stdout, "\n%-8s %8s %10s %10s %9s\n", "m/d", "m", "feasible", "hubs", "hub%")
	for _, tok := range strings.Split(*ratios, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || r <= 0 || r > 1 {
			fmt.Fprintf(stderr, "mcestats: bad ratio %q\n", tok)
			return 2
		}
		m := int(r*float64(s.MaxDegree) + 0.999)
		if m < 2 {
			m = 2
		}
		feasible, hubs := 0, 0
		for _, d := range degs {
			if d < m {
				feasible++
			} else {
				hubs++
			}
		}
		fmt.Fprintf(stdout, "%-8.2f %8d %10d %10d %8.2f%%\n",
			r, m, feasible, hubs, 100*float64(hubs)/float64(s.Nodes))
	}
	return 0
}
