// Command mcestats prints the sparsity profile of a network: the metrics
// the paper's machinery is driven by — degeneracy (Theorem 1's termination
// measure), d* (the decision-tree feature of §4), the degree distribution
// (Figure 6) and the feasible/hub split for a range of block sizes.
//
// Usage:
//
//	mcestats [-ratios 0.9,0.5,0.1] <graph-file>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mce"
	"mce/internal/experiments"
	"mce/internal/quality"
	"mce/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcestats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ratios := fs.String("ratios", "0.9,0.7,0.5,0.3,0.1", "m/d ratios for the feasible/hub split")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mcestats [flags] <graph-file>")
		fs.Usage()
		return 2
	}

	g, _, err := mce.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "mcestats:", err)
		return 1
	}

	s := mce.GraphMetrics(g)
	fmt.Fprintf(stdout, "nodes        %d\n", s.Nodes)
	fmt.Fprintf(stdout, "edges        %d\n", s.Edges)
	fmt.Fprintf(stdout, "max degree   %d\n", s.MaxDegree)
	fmt.Fprintf(stdout, "density      %.6f\n", s.Density)
	fmt.Fprintf(stdout, "degeneracy   %d\n", s.Degeneracy)
	fmt.Fprintf(stdout, "d*           %d\n", s.DStar)
	fmt.Fprintf(stdout, "clustering   %.4f\n", quality.GlobalClustering(g))
	if alpha, tail := experiments.PowerLawAlpha(g, 0); tail > 0 {
		fmt.Fprintf(stdout, "alpha (MLE)  %.2f (tail of %d nodes)\n", alpha, tail)
	}

	// Resolve the requested ratios and their block sizes up front: the m
	// values double as exact histogram boundaries below.
	type split struct {
		r float64
		m int
	}
	var splits []split
	for _, tok := range strings.Split(*ratios, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || r <= 0 || r > 1 {
			fmt.Fprintf(stderr, "mcestats: bad ratio %q\n", tok)
			return 2
		}
		m := int(r*float64(s.MaxDegree) + 0.999)
		if m < 2 {
			m = 2
		}
		splits = append(splits, split{r: r, m: m})
	}

	// One telemetry histogram carries every degree-derived statistic: the
	// bounds are the Figure 6 buckets (1..21, i.e. degrees 0..20 plus >20)
	// merged with each requested m, so the truncated distribution, the
	// low-degree share and every feasible/hub split read off the same
	// snapshot exactly (CountBelow is exact at bucket boundaries).
	boundSet := map[int64]bool{}
	for b := int64(1); b <= 21; b++ {
		boundSet[b] = true
	}
	for _, sp := range splits {
		boundSet[int64(sp.m)] = true
	}
	bounds := make([]int64, 0, len(boundSet))
	for b := range boundSet {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	degHist := telemetry.NewHistogram(bounds)
	for _, d := range mce.Degrees(g) {
		degHist.Observe(int64(d))
	}
	snap := degHist.Snapshot()

	// Truncated degree distribution, Figure 6 style.
	counts := make([]int64, 22)
	prev := int64(0)
	for d := 0; d <= 20; d++ {
		below, _ := snap.CountBelow(int64(d) + 1)
		counts[d] = below - prev
		prev = below
	}
	counts[21] = snap.Count - prev
	fmt.Fprintf(stdout, "degree histogram (0..20, >20): %v\n", counts)
	if s.Nodes > 0 {
		upTo20, _ := snap.CountBelow(21)
		isolated, _ := snap.CountBelow(1)
		fmt.Fprintf(stdout, "low-degree share (1..20): %.1f%%\n",
			100*float64(upTo20-isolated)/float64(s.Nodes))
	}

	// Feasible/hub split per requested block ratio: feasible means
	// degree < m, which is CountBelow(m) on the shared histogram.
	fmt.Fprintf(stdout, "\n%-8s %8s %10s %10s %9s\n", "m/d", "m", "feasible", "hubs", "hub%")
	for _, sp := range splits {
		feasible, exact := snap.CountBelow(int64(sp.m))
		if !exact {
			// Unreachable: every m is a bucket boundary by construction.
			fmt.Fprintf(stderr, "mcestats: internal error: inexact split at m=%d\n", sp.m)
			return 1
		}
		hubs := snap.Count - feasible
		fmt.Fprintf(stdout, "%-8.2f %8d %10d %10d %8.2f%%\n",
			sp.r, sp.m, feasible, hubs, 100*float64(hubs)/float64(s.Nodes))
	}
	return 0
}
