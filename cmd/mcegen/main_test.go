package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mce"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMissingOutput(t *testing.T) {
	code, _, errs := runCmd(t, "-model", "ba")
	if code == 0 || !strings.Contains(errs, "-o") {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
}

func TestUnknownModel(t *testing.T) {
	code, _, errs := runCmd(t, "-model", "nope", "-o", filepath.Join(t.TempDir(), "g.txt"))
	if code == 0 || !strings.Contains(errs, "unknown model") {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
}

func TestUnknownDataset(t *testing.T) {
	code, _, _ := runCmd(t, "-model", "dataset", "-name", "orkut", "-o", filepath.Join(t.TempDir(), "g.txt"))
	if code == 0 {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := runCmd(t, "-nonsense")
	if code != 2 {
		t.Fatalf("code = %d, want 2", code)
	}
}

func TestGenerateEveryModel(t *testing.T) {
	dir := t.TempDir()
	for _, model := range []string{"er", "ba", "ws", "hk", "chain"} {
		p := filepath.Join(dir, model+".txt")
		code, out, errs := runCmd(t, "-model", model, "-n", "80", "-k", "3", "-p", "0.3", "-o", p)
		if code != 0 {
			t.Fatalf("%s: code=%d errs=%q", model, code, errs)
		}
		if !strings.Contains(out, "wrote") {
			t.Fatalf("%s: out=%q", model, out)
		}
		g, _, err := mce.Load(p)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if g.M() == 0 {
			t.Fatalf("%s: generated empty graph", model)
		}
	}
}

func TestGenerateTriplesExtension(t *testing.T) {
	p := filepath.Join(t.TempDir(), "g.triples")
	code, _, errs := runCmd(t, "-model", "er", "-n", "40", "-p", "0.2", "-o", p)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	g, _, err := mce.Load(p)
	if err != nil || g.M() == 0 {
		t.Fatalf("triples load: %v", err)
	}
}

func TestGeneratePartitioned(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "parts")
	code, out, errs := runCmd(t, "-model", "hk", "-n", "150", "-k", "4", "-p", "0.6", "-parts", "3", "-o", dir)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	if !strings.Contains(out, "3 partitions") {
		t.Fatalf("out=%q", out)
	}
	g, _, err := mce.LoadPartitioned(dir)
	if err != nil || g.M() == 0 {
		t.Fatalf("partitioned load: %v", err)
	}
}

func TestGenerateDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset build is slow")
	}
	p := filepath.Join(t.TempDir(), "tw.txt")
	code, _, errs := runCmd(t, "-model", "dataset", "-name", "twitter1", "-o", p)
	if code != 0 {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
	g, _, err := mce.Load(p)
	if err != nil || g.N() == 0 {
		t.Fatalf("dataset load: %v", err)
	}
}
