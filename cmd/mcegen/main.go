// Command mcegen writes synthetic networks to disk: the random-graph models
// the paper trains on (Erdős–Rényi, Barabási–Albert, Watts–Strogatz), the
// clique-rich Holme–Kim social model, the Theorem 1 hard chain, and the five
// dataset surrogates of the evaluation.
//
// Usage:
//
//	mcegen -model ba -n 10000 -k 5 -seed 7 -o ba.txt
//	mcegen -model dataset -name twitter2 -o twitter2.txt
//	mcegen -model hk -n 5000 -k 6 -p 0.7 -o social.triples
//
// Models: er (uses -p as edge probability), ba, ws (uses -k and -p as
// rewiring beta), hk (uses -p as triad probability), plc (power-law
// configuration model, -p as exponent), chain (-k as the m of H_n),
// dataset (-name). A "-parts N" greater than 1 writes the graph as N
// part-*.triples files under the -o directory instead (the paper's
// distributed input layout, §6.2).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mce"
	"mce/internal/gen"
	"mce/internal/gio"
	"mce/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model = fs.String("model", "ba", "er|ba|ws|hk|plc|chain|dataset")
		n     = fs.Int("n", 1000, "number of nodes")
		k     = fs.Int("k", 4, "attachment/lattice/chain parameter")
		p     = fs.Float64("p", 0.5, "probability parameter (model-specific)")
		seed  = fs.Int64("seed", 1, "random seed")
		name  = fs.String("name", "twitter1", "dataset surrogate name")
		parts = fs.Int("parts", 1, "write this many part-*.triples files under -o")
		out   = fs.String("o", "", "output file, or directory when -parts > 1 (required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "mcegen: -o output file is required")
		fs.Usage()
		return 2
	}

	var g *graph.Graph
	switch *model {
	case "er":
		g = gen.ErdosRenyi(*n, *p, *seed)
	case "ba":
		g = gen.BarabasiAlbert(*n, *k, *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *k, *p, *seed)
	case "hk":
		g = gen.HolmeKim(*n, *k, *p, *seed)
	case "plc":
		// Power-law configuration model: -p is the exponent alpha, -k the
		// minimum degree.
		g = gen.PowerLawConfiguration(*n, *p, *k, *n/10+*k, *seed)
	case "chain":
		g = gen.HardChain(*n, *k, *seed)
	case "dataset":
		spec, err := gen.Dataset(*name)
		if err != nil {
			fmt.Fprintln(stderr, "mcegen:", err)
			return 1
		}
		g = spec.Build()
	default:
		fmt.Fprintf(stderr, "mcegen: unknown model %q\n", *model)
		return 2
	}

	if *parts > 1 {
		if err := gio.WritePartitioned(*out, g, *parts); err != nil {
			fmt.Fprintln(stderr, "mcegen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d partitions under %s: %d nodes, %d edges, max degree %d\n",
			*parts, *out, g.N(), g.M(), g.MaxDegree())
		return 0
	}
	if err := mce.Save(*out, g); err != nil {
		fmt.Fprintln(stderr, "mcegen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d nodes, %d edges, max degree %d\n", *out, g.N(), g.M(), g.MaxDegree())
	return 0
}
