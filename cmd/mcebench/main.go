// Command mcebench regenerates the paper's evaluation: every table and
// figure of Conte et al., "Finding All Maximal Cliques in Very Large Social
// Networks" (EDBT 2016), over the synthetic corpus and the dataset
// surrogates.
//
// Usage:
//
//	mcebench -exp all            # run everything
//	mcebench -exp t1,f7,f11      # run a subset
//	mcebench -list               # show the experiment index
//
// Experiment IDs follow DESIGN.md §4: t1 t2 t3 f3 f4 f6 f7 f8 f9 f10 f11
// x1 x2 x3 x4.
//
// The -smoke mode is the CI benchmark gate: a deterministic Holme–Kim
// workload timed best-of-N, normalized by a calibration run, written as a
// JSON report (-out) and compared against a checked-in baseline
// (-baseline, -regress). See smoke.go.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"mce/internal/cluster"
	"mce/internal/core"
	"mce/internal/decomp"
	"mce/internal/diskgraph"
	"mce/internal/dtree"
	"mce/internal/experiments"
	"mce/internal/extmce"
	"mce/internal/gen"
	"mce/internal/mcealg"
)

type experiment struct {
	id, what string
	run      func() error
}

// out is the sink the experiment tables are written to; main wires it to
// stdout, tests capture it.
var out io.Writer = os.Stdout

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	out = stdout
	fs := flag.NewFlagSet("mcebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
	list := fs.Bool("list", false, "list experiments and exit")
	smoke := fs.Bool("smoke", false, "run the CI benchmark smoke workload instead of the experiments")
	smokeOut := fs.String("out", "", "with -smoke: write the report JSON to this file")
	baseline := fs.String("baseline", "", "with -smoke: gate against this baseline report JSON")
	regress := fs.Float64("regress", 0.30, "with -smoke: max allowed normalized-time regression fraction")
	smokeRuns := fs.Int("smoke-runs", 3, "with -smoke: best-of-N timed runs")
	parFloor := fs.Float64("par-floor", 1.25, "with -smoke: min dense-block speedup of the intra-block pool (enforced only on 4+ CPU machines)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *smoke {
		return runSmoke(stdout, stderr, *smokeOut, *baseline, *regress, *smokeRuns, *parFloor)
	}

	exps := index()
	if *list {
		for _, e := range exps {
			fmt.Fprintf(out, "%-4s %s\n", e.id, e.what)
		}
		return 0
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	known := map[string]bool{}
	for _, e := range exps {
		known[e.id] = true
	}
	for id := range want {
		if id != "all" && !known[id] {
			fmt.Fprintf(stderr, "mcebench: unknown experiment %q (use -list)\n", id)
			return 2
		}
	}

	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		fmt.Fprintf(out, "=== %s: %s\n", e.id, e.what)
		t0 := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(stderr, "mcebench: %s: %v\n", e.id, err)
			return 1
		}
		fmt.Fprintf(out, "--- %s done in %v\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	return 0
}

// measured caches the corpus measurement shared by t1, t2, f3 and f4.
var measured []experiments.CorpusMeasurement

func measure() ([]experiments.CorpusMeasurement, error) {
	if measured != nil {
		return measured, nil
	}
	ms, err := experiments.MeasureCorpus(gen.Corpus(1))
	if err != nil {
		return nil, err
	}
	measured = ms
	return ms, nil
}

// sweeps caches the per-dataset ratio sweeps shared by f7–f11.
var sweeps map[string][]experiments.RatioResult

func sweepAll() (map[string][]experiments.RatioResult, error) {
	if sweeps != nil {
		return sweeps, nil
	}
	out := map[string][]experiments.RatioResult{}
	for _, spec := range gen.Datasets() {
		rs, err := experiments.RunRatioSweep(spec.Build(), experiments.PaperRatios())
		if err != nil {
			return nil, err
		}
		out[spec.Name] = rs
	}
	sweeps = out
	return out, nil
}

func sweepNames(m map[string][]experiments.RatioResult) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func index() []experiment {
	return []experiment{
		{"t1", "Table 1: #wins of each algorithm/structure combo on the 50-graph corpus", func() error {
			ms, err := measure()
			if err != nil {
				return err
			}
			rows := experiments.Table1(ms)
			fmt.Fprintf(out, "%-12s %8s %8s %8s\n", "Algorithm", "Matrix", "Lists", "BitSets")
			for _, alg := range []mcealg.Algorithm{mcealg.BKPivot, mcealg.Tomita, mcealg.Eppstein, mcealg.XPivot} {
				wins := map[mcealg.Structure]int{}
				for _, r := range rows {
					if r.Combo.Alg == alg {
						wins[r.Combo.Struct] = r.Wins
					}
				}
				fmt.Fprintf(out, "%-12s %8d %8d %8d\n", alg, wins[mcealg.Matrix], wins[mcealg.Lists], wins[mcealg.BitSets])
			}
			return nil
		}},
		{"t2", "Table 2: parameter ranges of the corpus", func() error {
			ms, err := measure()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-12s %14s %14s\n", "Metric", "Min", "Max")
			for _, r := range experiments.Table2(ms) {
				fmt.Fprintf(out, "%-12s %14.5g %14.5g\n", r.Metric, r.Min, r.Max)
			}
			return nil
		}},
		{"t3", "Table 3: dataset surrogate statistics (paper values in parentheses)", func() error {
			rows, _ := experiments.Table3()
			fmt.Fprintf(out, "%-10s %22s %24s %22s\n", "Network", "#nodes", "#edges", "max degree")
			for _, r := range rows {
				fmt.Fprintf(out, "%-10s %10d (%9d) %12d (%9d) %10d (%7d)\n",
					r.Name, r.Nodes, r.PaperNodes, r.Edges, r.PaperEdges, r.MaxDegree, r.PaperMaxDegree)
			}
			return nil
		}},
		{"f3", "Figure 3: the trained decision tree", func() error {
			ms, err := measure()
			if err != nil {
				return err
			}
			eval := experiments.Figures3And4(ms)
			fmt.Fprintf(out, "trained on %d graphs, tested on %d, test accuracy %.0f%%\n%s",
				eval.TrainGraphs, eval.TestGraphs, 100*eval.TestAccuracy, eval.Tree)
			fmt.Fprintf(out, "feature importance: ")
			imp := eval.Tree.FeatureImportance()
			feats := make([]dtree.Feature, 0, len(imp))
			for f := range imp {
				feats = append(feats, f)
			}
			sort.Slice(feats, func(i, j int) bool { return feats[i] < feats[j] })
			for _, f := range feats {
				fmt.Fprintf(out, "%v=%.2f ", f, imp[f])
			}
			fmt.Fprintln(out)
			return nil
		}},
		{"f4", "Figure 4: test-set time, decision tree vs the 5 best fixed combos", func() error {
			ms, err := measure()
			if err != nil {
				return err
			}
			eval := experiments.Figures3And4(ms)
			fmt.Fprintf(out, "%-20s %12v\n", "Decision Tree", eval.TreeTime)
			for _, ft := range eval.FixedTimes[:5] {
				fmt.Fprintf(out, "%-20s %12v\n", ft.Combo, ft.Total)
			}
			return nil
		}},
		{"f6", "Figure 6: truncated degree distributions of the surrogates", func() error {
			_, graphs := experiments.Table3()
			for _, r := range experiments.Figure6(graphs) {
				fmt.Fprintf(out, "%-10s low-degree share %.0f%%  alpha=%.2f (tail %d)  counts=%v\n",
					r.Name, 100*r.LowDegreeShare, r.Alpha, r.TailNodes, r.Counts)
			}
			return nil
		}},
		{"f7", "Figure 7: decomposition time vs m/d (iterations in parentheses)", func() error {
			sw, err := sweepAll()
			if err != nil {
				return err
			}
			for _, name := range sweepNames(sw) {
				fmt.Fprintf(out, "%-10s", name)
				for _, rr := range sw[name] {
					fmt.Fprintf(out, " %.1f:%v(it=%d,B=%d)", rr.Ratio, rr.Decomp.Round(time.Millisecond), rr.Iterations, rr.Blocks)
				}
				fmt.Fprintln(out)
			}
			return nil
		}},
		{"f8", "Figure 8: clique computation time vs m/d", func() error {
			sw, err := sweepAll()
			if err != nil {
				return err
			}
			for _, name := range sweepNames(sw) {
				fmt.Fprintf(out, "%-10s", name)
				for _, rr := range sw[name] {
					fmt.Fprintf(out, " %.1f:%v", rr.Ratio, (rr.Analysis + rr.Filter).Round(time.Millisecond))
				}
				fmt.Fprintln(out)
			}
			return nil
		}},
		{"f9", "Figure 9: clique counts/sizes on the twitter surrogates, feasible vs hub-only", func() error {
			return printSplit([]string{"twitter1", "twitter2", "twitter3"})
		}},
		{"f10", "Figure 10: clique counts/sizes on facebook/google+, feasible vs hub-only", func() error {
			return printSplit([]string{"facebook", "google+"})
		}},
		{"f11", "Figure 11: hub-only share of the 200 largest cliques", func() error {
			sw, err := sweepAll()
			if err != nil {
				return err
			}
			for _, name := range sweepNames(sw) {
				fmt.Fprintf(out, "%-10s", name)
				for _, rr := range sw[name] {
					fmt.Fprintf(out, " %.1f:%.0f%%", rr.Ratio, 100*rr.Top200HubShare)
				}
				fmt.Fprintln(out)
			}
			return nil
		}},
		{"x1", "X1: hub-neglecting baseline — missed and spurious cliques", func() error {
			spec, err := gen.Dataset("twitter1")
			if err != nil {
				return err
			}
			g := spec.Build()
			results, err := experiments.HubNeglectBaseline(g, []float64{0.9, 0.5, 0.3, 0.1})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-8s %6s %10s %10s %10s %10s %14s\n", "m/d", "m", "truth", "found", "missed", "spurious", "maxMissedSize")
			for _, r := range results {
				fmt.Fprintf(out, "%-8.1f %6d %10d %10d %10d %10d %14d\n",
					r.Ratio, r.M, r.Truth, r.Found, r.Missed, r.Spurious, r.MaxMissedSize)
			}
			return nil
		}},
		{"x3", "X3: communication overhead — local vs latency-laden cluster as m shrinks", func() error {
			spec, err := gen.Dataset("twitter1")
			if err != nil {
				return err
			}
			g := spec.Build()
			addrs, stop, err := cluster.StartLocal(4)
			if err != nil {
				return err
			}
			defer stop()
			client, err := cluster.Dial(addrs, cluster.ClientOptions{Latency: 500 * time.Microsecond})
			if err != nil {
				return err
			}
			defer client.Close()
			points, err := experiments.CommunicationOverhead(g, experiments.PaperRatios(), client)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-8s %8s %12s %14s %10s\n", "m/d", "blocks", "local", "distributed", "overhead")
			for _, p := range points {
				fmt.Fprintf(out, "%-8.1f %8d %12v %14v %9.1fx\n",
					p.Ratio, p.Blocks, p.Local.Round(time.Millisecond),
					p.Distributed.Round(time.Millisecond),
					float64(p.Distributed)/float64(p.Local))
			}
			return nil
		}},
		{"a1", "A1: block seeding ablation — greedy-dense vs random (the §7 partitioning claim)", func() error {
			spec, err := gen.Dataset("twitter1")
			if err != nil {
				return err
			}
			g := spec.Build()
			m := g.MaxDegree() / 2
			feasible, _ := decomp.Cut(g, m)
			fmt.Fprintf(out, "%-12s %8s %14s %14s %12s\n", "order", "blocks", "avg density", "decomp", "analysis")
			for _, o := range []struct {
				name  string
				order decomp.Order
			}{{"degree-asc", decomp.OrderDegreeAsc}, {"node-id", decomp.OrderID}, {"random", decomp.OrderRandom}} {
				t0 := time.Now()
				blocks := decomp.Blocks(g, feasible, m, decomp.Options{Order: o.order, Seed: 1})
				decompTime := time.Since(t0)
				density, counted := 0.0, 0
				for i := range blocks {
					if blocks[i].Graph.N() >= 2 {
						density += blocks[i].Graph.Density()
						counted++
					}
				}
				t0 = time.Now()
				res, err := core.FindMaxCliques(g, core.Options{BlockSize: m, Block: decomp.Options{Order: o.order, Seed: 1}})
				if err != nil {
					return err
				}
				_ = res
				analysis := time.Since(t0)
				fmt.Fprintf(out, "%-12s %8d %14.4f %14v %12v\n",
					o.name, len(blocks), density/float64(counted),
					decompTime.Round(time.Millisecond), analysis.Round(time.Millisecond))
			}
			return nil
		}},
		{"x5", "X5: out-of-core — disk-resident enumeration vs in-memory", func() error {
			g := gen.HolmeKim(8000, 6, 0.7, 68)
			dir, err := os.MkdirTemp("", "mcebench-ooc")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			path := dir + "/g.mceg"
			if err := diskgraph.Write(path, g); err != nil {
				return err
			}
			t0 := time.Now()
			res, err := core.FindMaxCliques(g, core.Options{BlockRatio: 0.3})
			if err != nil {
				return err
			}
			inMem := time.Since(t0)
			for _, prefetch := range []int{0, 4} {
				dg, err := diskgraph.Open(path)
				if err != nil {
					return err
				}
				t0 = time.Now()
				n := 0
				stats, err := extmce.Enumerate(dg, extmce.Options{BlockRatio: 0.3, Prefetch: prefetch},
					func([]int32, int) { n++ })
				elapsed := time.Since(t0)
				dg.Close()
				if err != nil {
					return err
				}
				if n != res.Stats.TotalCliques {
					return fmt.Errorf("out-of-core found %d cliques, in-memory %d", n, res.Stats.TotalCliques)
				}
				fmt.Fprintf(out, "out-of-core prefetch=%d: %v (%d blocks, %d disk reads)\n",
					prefetch, elapsed.Round(time.Millisecond), stats.Blocks, stats.DiskReads)
			}
			fmt.Fprintf(out, "in-memory              : %v (%d cliques either way)\n",
				inMem.Round(time.Millisecond), res.Stats.TotalCliques)
			return nil
		}},
		{"x4", "X4: scalability — end-to-end runtime vs graph size and parallelism", func() error {
			fmt.Fprintf(out, "%-8s %10s %10s %12s %12s %12s\n", "n", "edges", "cliques", "p=1", "p=2", "p=4")
			for _, n := range []int{2000, 4000, 8000, 16000} {
				g := gen.HolmeKim(n, 6, 0.7, int64(n))
				var times [3]time.Duration
				cliques := 0
				for i, p := range []int{1, 2, 4} {
					t0 := time.Now()
					res, err := core.FindMaxCliques(g, core.Options{Parallelism: p})
					if err != nil {
						return err
					}
					times[i] = time.Since(t0)
					cliques = res.Stats.TotalCliques
				}
				fmt.Fprintf(out, "%-8d %10d %10d %12v %12v %12v\n", n, g.M(), cliques,
					times[0].Round(time.Millisecond), times[1].Round(time.Millisecond),
					times[2].Round(time.Millisecond))
			}
			return nil
		}},
		{"x2", "X2: Theorem 1 hard chain — Ω(n) first-level iterations", func() error {
			points, err := experiments.HardChainRounds([]int{50, 100, 200, 400}, 4)
			if err != nil {
				return err
			}
			for _, p := range points {
				fmt.Fprintf(out, "n=%-5d iterations=%d\n", p.N, p.Iterations)
			}
			return nil
		}},
	}
}

func printSplit(names []string) error {
	sw, err := sweepAll()
	if err != nil {
		return err
	}
	for _, name := range names {
		rs := sw[name]
		fmt.Fprintf(out, "%-10s (max clique size %d)\n", name, rs[0].MaxCliqueSize)
		fmt.Fprintf(out, "  %-8s %12s %12s %10s %10s\n", "m/d", "#feasible", "#hub-only", "avg|feas|", "avg|hub|")
		for _, rr := range rs {
			fmt.Fprintf(out, "  %-8.1f %12d %12d %10.2f %10.2f\n",
				rr.Ratio, rr.FeasibleCliques, rr.HubCliques, rr.AvgSizeFeasible, rr.AvgSizeHub)
		}
	}
	return nil
}
