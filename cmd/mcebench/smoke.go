// The -smoke mode is the CI benchmark gate: a small deterministic workload
// whose best-of-N wall time is normalized by a calibration run on the same
// machine, so the checked-in baseline is portable across runner hardware.
// The gate fails when the normalized time regresses past -regress, or when
// the clique count drifts from the baseline (a correctness canary: the
// workload is fully deterministic, so any drift is a bug, not noise).
package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"mce/internal/core"
	"mce/internal/gen"
	"mce/internal/telemetry"
)

// The smoke workload and the calibration workload are both Holme–Kim graphs
// (the corpus generator): the calibration one is small enough to be noise
// but big enough to exercise the same decomposition + block-analysis path,
// so the wall/calib ratio cancels out machine speed.
const (
	smokeNodes = 5000
	smokeDeg   = 6
	smokeTriad = 0.7
	smokeSeed  = 42
	smokeRatio = 0.3

	calibNodes = 1200
	calibDeg   = 5
	calibTriad = 0.6
	calibSeed  = 7

	// The dense-block scenario: an Erdős–Rényi graph dense enough that the
	// whole run is one terminal-core enumeration — the exact shape
	// intra-block parallelism exists for. It runs twice, sequential and
	// with a 4-wide work-stealing pool, and gates on two things: the FNV
	// digests of the two output streams must be bit-identical (determinism
	// is a hard contract, not a statistic), and on machines with enough
	// cores the parallel run must actually be faster (-par-floor).
	denseNodes   = 200
	denseEdgeP   = 0.5
	denseSeed    = 2016
	denseWorkers = 4

	// parFloorMinCPUs is the smallest runtime.NumCPU() at which the speedup
	// floor is enforced: below it the pool is time-slicing one or two
	// cores, where a speedup is physically impossible and the digest check
	// is the only meaningful gate.
	parFloorMinCPUs = 4

	smokeSchema = 2
)

// smokeGraph pins the workload identity into the report; a baseline from a
// different workload must not silently gate a new one.
type smokeGraph struct {
	Nodes int     `json:"nodes"`
	Deg   int     `json:"deg"`
	Triad float64 `json:"triad"`
	Seed  int64   `json:"seed"`
	Ratio float64 `json:"ratio"`
}

// parScenario records the dense-block sequential-vs-parallel comparison.
// Digest and Cliques are machine-independent (the workload is
// deterministic), so the baseline gates on them exactly; the timing fields
// are evidence, compared only within this run (Speedup), never across
// machines.
type parScenario struct {
	Nodes         int     `json:"nodes"`
	EdgeP         float64 `json:"edge_p"`
	Seed          int64   `json:"seed"`
	Workers       int     `json:"workers"`
	Cliques       int     `json:"cliques"`
	Digest        string  `json:"digest"`
	SeqBestNs     int64   `json:"seq_best_ns"`
	ParBestNs     int64   `json:"par_best_ns"`
	Speedup       float64 `json:"speedup"`
	NumCPU        int     `json:"num_cpu"`
	FloorEnforced bool    `json:"floor_enforced"`
	Floor         float64 `json:"floor"`
}

type smokeReport struct {
	Schema     int                `json:"schema"`
	Graph      smokeGraph         `json:"graph"`
	Cliques    int                `json:"cliques"`
	Runs       int                `json:"runs"`
	BestWallNs int64              `json:"best_wall_ns"`
	CalibNs    int64              `json:"calib_ns"`
	Normalized float64            `json:"normalized"`
	Parallel   parScenario        `json:"parallel"`
	Telemetry  telemetry.Snapshot `json:"telemetry"`
}

// bestWall runs f n times and keeps the fastest wall time — best-of-N is the
// standard way to strip scheduler noise from a single-threaded benchmark.
func bestWall(n int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// runParScenario runs the dense-block workload sequentially and with the
// intra-block pool, best-of-N each, digesting both output streams. The
// digests must agree unconditionally; the error return carries a mismatch.
func runParScenario(runs int, parFloor float64) (parScenario, error) {
	g := gen.ErdosRenyi(denseNodes, denseEdgeP, denseSeed)
	sc := parScenario{
		Nodes: denseNodes, EdgeP: denseEdgeP, Seed: denseSeed, Workers: denseWorkers,
		NumCPU: runtime.NumCPU(),
		Floor:  parFloor,
	}
	run := func(opts core.Options) (int, string, time.Duration, error) {
		cliques, digest := -1, ""
		wall, err := bestWall(runs, func() error {
			h := fnv.New64a()
			n := 0
			var buf [4]byte
			res, err := core.FindMaxCliques(g, opts)
			if err != nil {
				return err
			}
			for _, c := range res.Cliques {
				for _, v := range c {
					buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
					h.Write(buf[:])
				}
				h.Write([]byte{0xff, 0xff, 0xff, 0xff}) // clique separator
				n++
			}
			d := fmt.Sprintf("%016x", h.Sum64())
			if cliques >= 0 && (cliques != n || digest != d) {
				return fmt.Errorf("nondeterministic output across repeats: %d/%s then %d/%s", cliques, digest, n, d)
			}
			cliques, digest = n, d
			return nil
		})
		return cliques, digest, wall, err
	}
	seqCliques, seqDigest, seqWall, err := run(core.Options{Parallelism: 1})
	if err != nil {
		return sc, fmt.Errorf("dense sequential: %w", err)
	}
	parCliques, parDigest, parWall, err := run(core.Options{Parallelism: 1, IntraBlockParallelism: denseWorkers})
	if err != nil {
		return sc, fmt.Errorf("dense parallel: %w", err)
	}
	sc.Cliques, sc.Digest = seqCliques, seqDigest
	sc.SeqBestNs, sc.ParBestNs = seqWall.Nanoseconds(), parWall.Nanoseconds()
	sc.Speedup = float64(seqWall) / float64(parWall)
	sc.FloorEnforced = sc.NumCPU >= parFloorMinCPUs
	if parDigest != seqDigest || parCliques != seqCliques {
		return sc, fmt.Errorf("parallel output diverged from sequential: %d cliques/%s vs %d/%s — determinism regression",
			parCliques, parDigest, seqCliques, seqDigest)
	}
	if sc.FloorEnforced && sc.Speedup < parFloor {
		return sc, fmt.Errorf("parallel speedup %.2fx below floor %.2fx on %d CPUs (seq %v, par %v) — scaling regression",
			sc.Speedup, parFloor, sc.NumCPU, seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond))
	}
	return sc, nil
}

func runSmoke(stdout, stderr io.Writer, outPath, baselinePath string, regress float64, runs int, parFloor float64) int {
	if runs < 1 {
		fmt.Fprintln(stderr, "mcebench: -smoke-runs must be at least 1")
		return 2
	}
	if regress <= 0 {
		fmt.Fprintln(stderr, "mcebench: -regress must be positive")
		return 2
	}
	if parFloor <= 0 {
		fmt.Fprintln(stderr, "mcebench: -par-floor must be positive")
		return 2
	}

	g := gen.HolmeKim(smokeNodes, smokeDeg, smokeTriad, smokeSeed)
	cg := gen.HolmeKim(calibNodes, calibDeg, calibTriad, calibSeed)
	opts := core.Options{BlockRatio: smokeRatio, Parallelism: 1}

	calib, err := bestWall(runs, func() error {
		_, err := core.FindMaxCliques(cg, opts)
		return err
	})
	if err != nil {
		fmt.Fprintln(stderr, "mcebench: calibration:", err)
		return 1
	}

	// Timed runs go through the uninstrumented default path — that is what
	// the gate protects. Determinism is checked across the N runs.
	cliques := -1
	wall, err := bestWall(runs, func() error {
		res, err := core.FindMaxCliques(g, opts)
		if err != nil {
			return err
		}
		if cliques >= 0 && res.Stats.TotalCliques != cliques {
			return fmt.Errorf("nondeterministic clique count: %d then %d", cliques, res.Stats.TotalCliques)
		}
		cliques = res.Stats.TotalCliques
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "mcebench:", err)
		return 1
	}

	// One extra instrumented run feeds the artifact's telemetry section
	// (blocks, recursion nodes, filter work) without polluting the timing.
	eng := telemetry.NewEngine()
	instr := opts
	instr.Metrics = eng
	if _, err := core.FindMaxCliques(g, instr); err != nil {
		fmt.Fprintln(stderr, "mcebench: instrumented run:", err)
		return 1
	}

	// The dense-block parallel scenario gates in-run (digest equality,
	// speedup floor); its verdict is deferred until after the report is
	// written so a failing gate still leaves the artifact behind.
	parSc, parErr := runParScenario(runs, parFloor)

	rep := smokeReport{
		Schema:     smokeSchema,
		Graph:      smokeGraph{Nodes: smokeNodes, Deg: smokeDeg, Triad: smokeTriad, Seed: smokeSeed, Ratio: smokeRatio},
		Cliques:    cliques,
		Runs:       runs,
		BestWallNs: wall.Nanoseconds(),
		CalibNs:    calib.Nanoseconds(),
		Normalized: float64(wall) / float64(calib),
		Parallel:   parSc,
		Telemetry:  eng.Snapshot(),
	}
	fmt.Fprintf(stdout, "smoke: %d cliques, best of %d: %v (calib %v, normalized %.3f)\n",
		rep.Cliques, rep.Runs, wall.Round(time.Millisecond), calib.Round(time.Millisecond), rep.Normalized)
	floorNote := "enforced"
	if !parSc.FloorEnforced {
		floorNote = fmt.Sprintf("not enforced, %d CPUs < %d", parSc.NumCPU, parFloorMinCPUs)
	}
	fmt.Fprintf(stdout, "smoke: dense block %d cliques, seq %v vs %d-worker %v (%.2fx, floor %.2fx %s), digest %s\n",
		parSc.Cliques, time.Duration(parSc.SeqBestNs).Round(time.Millisecond), parSc.Workers,
		time.Duration(parSc.ParBestNs).Round(time.Millisecond), parSc.Speedup, parSc.Floor, floorNote, parSc.Digest)

	// The report is written before the gate runs, so CI can always upload
	// the artifact — a failing gate still leaves evidence behind.
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "mcebench:", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "mcebench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "smoke: report written to %s\n", outPath)
	}

	if parErr != nil {
		fmt.Fprintln(stderr, "mcebench: parallel gate:", parErr)
		return 1
	}

	if baselinePath != "" {
		if err := gateAgainstBaseline(stdout, rep, baselinePath, regress); err != nil {
			fmt.Fprintln(stderr, "mcebench: benchmark gate:", err)
			return 1
		}
	}
	return 0
}

// gateAgainstBaseline compares the fresh report with the checked-in one.
// Clique counts must match exactly (the workload is deterministic); the
// normalized wall time may drift up to the regress fraction.
func gateAgainstBaseline(stdout io.Writer, rep smokeReport, path string, regress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base smokeReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Schema != rep.Schema {
		return fmt.Errorf("baseline schema %d, tool speaks %d — regenerate the baseline", base.Schema, rep.Schema)
	}
	if base.Graph != rep.Graph {
		return fmt.Errorf("baseline ran workload %+v, this run %+v — regenerate the baseline", base.Graph, rep.Graph)
	}
	if base.Cliques != rep.Cliques {
		return fmt.Errorf("clique count %d differs from baseline %d on a deterministic workload — correctness regression",
			rep.Cliques, base.Cliques)
	}
	if base.Normalized <= 0 {
		return fmt.Errorf("baseline normalized time %.3f is not positive — regenerate the baseline", base.Normalized)
	}
	// The parallel scenario's workload identity, clique count and output
	// digest are machine-independent; its timings are not, so the baseline
	// never gates on them (the in-run speedup floor does that).
	if base.Parallel.Nodes != rep.Parallel.Nodes || base.Parallel.EdgeP != rep.Parallel.EdgeP ||
		base.Parallel.Seed != rep.Parallel.Seed || base.Parallel.Workers != rep.Parallel.Workers {
		return fmt.Errorf("baseline dense scenario (n=%d p=%.2f seed=%d w=%d) differs from this run (n=%d p=%.2f seed=%d w=%d) — regenerate the baseline",
			base.Parallel.Nodes, base.Parallel.EdgeP, base.Parallel.Seed, base.Parallel.Workers,
			rep.Parallel.Nodes, rep.Parallel.EdgeP, rep.Parallel.Seed, rep.Parallel.Workers)
	}
	if base.Parallel.Cliques != rep.Parallel.Cliques {
		return fmt.Errorf("dense-block clique count %d differs from baseline %d — correctness regression",
			rep.Parallel.Cliques, base.Parallel.Cliques)
	}
	if base.Parallel.Digest != rep.Parallel.Digest {
		return fmt.Errorf("dense-block output digest %s differs from baseline %s — determinism regression",
			rep.Parallel.Digest, base.Parallel.Digest)
	}
	ratio := rep.Normalized / base.Normalized
	if ratio > 1+regress {
		return fmt.Errorf("normalized time %.3f is %.0f%% over baseline %.3f (limit +%.0f%%)",
			rep.Normalized, 100*(ratio-1), base.Normalized, 100*regress)
	}
	fmt.Fprintf(stdout, "smoke: gate passed, normalized %.3f vs baseline %.3f (%+.0f%%, limit +%.0f%%)\n",
		rep.Normalized, base.Normalized, 100*(ratio-1), 100*regress)
	return nil
}
