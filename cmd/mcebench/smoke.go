// The -smoke mode is the CI benchmark gate: a small deterministic workload
// whose best-of-N wall time is normalized by a calibration run on the same
// machine, so the checked-in baseline is portable across runner hardware.
// The gate fails when the normalized time regresses past -regress, or when
// the clique count drifts from the baseline (a correctness canary: the
// workload is fully deterministic, so any drift is a bug, not noise).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mce/internal/core"
	"mce/internal/gen"
	"mce/internal/telemetry"
)

// The smoke workload and the calibration workload are both Holme–Kim graphs
// (the corpus generator): the calibration one is small enough to be noise
// but big enough to exercise the same decomposition + block-analysis path,
// so the wall/calib ratio cancels out machine speed.
const (
	smokeNodes = 5000
	smokeDeg   = 6
	smokeTriad = 0.7
	smokeSeed  = 42
	smokeRatio = 0.3

	calibNodes = 1200
	calibDeg   = 5
	calibTriad = 0.6
	calibSeed  = 7

	smokeSchema = 1
)

// smokeGraph pins the workload identity into the report; a baseline from a
// different workload must not silently gate a new one.
type smokeGraph struct {
	Nodes int     `json:"nodes"`
	Deg   int     `json:"deg"`
	Triad float64 `json:"triad"`
	Seed  int64   `json:"seed"`
	Ratio float64 `json:"ratio"`
}

type smokeReport struct {
	Schema     int                `json:"schema"`
	Graph      smokeGraph         `json:"graph"`
	Cliques    int                `json:"cliques"`
	Runs       int                `json:"runs"`
	BestWallNs int64              `json:"best_wall_ns"`
	CalibNs    int64              `json:"calib_ns"`
	Normalized float64            `json:"normalized"`
	Telemetry  telemetry.Snapshot `json:"telemetry"`
}

// bestWall runs f n times and keeps the fastest wall time — best-of-N is the
// standard way to strip scheduler noise from a single-threaded benchmark.
func bestWall(n int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func runSmoke(stdout, stderr io.Writer, outPath, baselinePath string, regress float64, runs int) int {
	if runs < 1 {
		fmt.Fprintln(stderr, "mcebench: -smoke-runs must be at least 1")
		return 2
	}
	if regress <= 0 {
		fmt.Fprintln(stderr, "mcebench: -regress must be positive")
		return 2
	}

	g := gen.HolmeKim(smokeNodes, smokeDeg, smokeTriad, smokeSeed)
	cg := gen.HolmeKim(calibNodes, calibDeg, calibTriad, calibSeed)
	opts := core.Options{BlockRatio: smokeRatio, Parallelism: 1}

	calib, err := bestWall(runs, func() error {
		_, err := core.FindMaxCliques(cg, opts)
		return err
	})
	if err != nil {
		fmt.Fprintln(stderr, "mcebench: calibration:", err)
		return 1
	}

	// Timed runs go through the uninstrumented default path — that is what
	// the gate protects. Determinism is checked across the N runs.
	cliques := -1
	wall, err := bestWall(runs, func() error {
		res, err := core.FindMaxCliques(g, opts)
		if err != nil {
			return err
		}
		if cliques >= 0 && res.Stats.TotalCliques != cliques {
			return fmt.Errorf("nondeterministic clique count: %d then %d", cliques, res.Stats.TotalCliques)
		}
		cliques = res.Stats.TotalCliques
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "mcebench:", err)
		return 1
	}

	// One extra instrumented run feeds the artifact's telemetry section
	// (blocks, recursion nodes, filter work) without polluting the timing.
	eng := telemetry.NewEngine()
	instr := opts
	instr.Metrics = eng
	if _, err := core.FindMaxCliques(g, instr); err != nil {
		fmt.Fprintln(stderr, "mcebench: instrumented run:", err)
		return 1
	}

	rep := smokeReport{
		Schema:     smokeSchema,
		Graph:      smokeGraph{Nodes: smokeNodes, Deg: smokeDeg, Triad: smokeTriad, Seed: smokeSeed, Ratio: smokeRatio},
		Cliques:    cliques,
		Runs:       runs,
		BestWallNs: wall.Nanoseconds(),
		CalibNs:    calib.Nanoseconds(),
		Normalized: float64(wall) / float64(calib),
		Telemetry:  eng.Snapshot(),
	}
	fmt.Fprintf(stdout, "smoke: %d cliques, best of %d: %v (calib %v, normalized %.3f)\n",
		rep.Cliques, rep.Runs, wall.Round(time.Millisecond), calib.Round(time.Millisecond), rep.Normalized)

	// The report is written before the gate runs, so CI can always upload
	// the artifact — a failing gate still leaves evidence behind.
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "mcebench:", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "mcebench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "smoke: report written to %s\n", outPath)
	}

	if baselinePath != "" {
		if err := gateAgainstBaseline(stdout, rep, baselinePath, regress); err != nil {
			fmt.Fprintln(stderr, "mcebench: benchmark gate:", err)
			return 1
		}
	}
	return 0
}

// gateAgainstBaseline compares the fresh report with the checked-in one.
// Clique counts must match exactly (the workload is deterministic); the
// normalized wall time may drift up to the regress fraction.
func gateAgainstBaseline(stdout io.Writer, rep smokeReport, path string, regress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base smokeReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Schema != rep.Schema {
		return fmt.Errorf("baseline schema %d, tool speaks %d — regenerate the baseline", base.Schema, rep.Schema)
	}
	if base.Graph != rep.Graph {
		return fmt.Errorf("baseline ran workload %+v, this run %+v — regenerate the baseline", base.Graph, rep.Graph)
	}
	if base.Cliques != rep.Cliques {
		return fmt.Errorf("clique count %d differs from baseline %d on a deterministic workload — correctness regression",
			rep.Cliques, base.Cliques)
	}
	if base.Normalized <= 0 {
		return fmt.Errorf("baseline normalized time %.3f is not positive — regenerate the baseline", base.Normalized)
	}
	ratio := rep.Normalized / base.Normalized
	if ratio > 1+regress {
		return fmt.Errorf("normalized time %.3f is %.0f%% over baseline %.3f (limit +%.0f%%)",
			rep.Normalized, 100*(ratio-1), base.Normalized, 100*regress)
	}
	fmt.Fprintf(stdout, "smoke: gate passed, normalized %.3f vs baseline %.3f (%+.0f%%, limit +%.0f%%)\n",
		rep.Normalized, base.Normalized, 100*(ratio-1), 100*regress)
	return nil
}
