package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeOnce runs the smoke mode with one timed run (plenty for correctness;
// CI uses best-of-N) and returns the parsed report.
func smokeOnce(t *testing.T, extra ...string) (smokeReport, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "smoke.json")
	args := append([]string{"-smoke", "-smoke-runs", "1", "-out", path}, extra...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("smoke exit %d: %s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep smokeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, data)
	}
	return rep, path
}

func TestSmokeReport(t *testing.T) {
	rep, _ := smokeOnce(t)
	if rep.Schema != smokeSchema {
		t.Errorf("schema = %d, want %d", rep.Schema, smokeSchema)
	}
	if rep.Cliques <= 0 || rep.BestWallNs <= 0 || rep.CalibNs <= 0 || rep.Normalized <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	// The instrumented run populates the artifact's telemetry section.
	if rep.Telemetry.BlocksBuilt == 0 || rep.Telemetry.RecursionNodes == 0 {
		t.Fatalf("telemetry section empty: %+v", rep.Telemetry)
	}
	if rep.Telemetry.CliquesFound-rep.Telemetry.HubCliquesFiltered != int64(rep.Cliques) {
		t.Fatalf("telemetry cliques %d−%d disagree with report %d",
			rep.Telemetry.CliquesFound, rep.Telemetry.HubCliquesFiltered, rep.Cliques)
	}
	// The dense parallel scenario must have run and digested both modes
	// identically (runSmoke fails otherwise, so reaching here means the
	// digests already matched); sanity-check the recorded evidence.
	p := rep.Parallel
	if p.Cliques <= 0 || p.Digest == "" || p.SeqBestNs <= 0 || p.ParBestNs <= 0 || p.Speedup <= 0 {
		t.Fatalf("degenerate parallel scenario: %+v", p)
	}
	if p.Workers != denseWorkers || p.Nodes != denseNodes {
		t.Fatalf("parallel scenario ran wrong workload: %+v", p)
	}
	if p.FloorEnforced != (p.NumCPU >= parFloorMinCPUs) {
		t.Fatalf("floor enforcement %v inconsistent with %d CPUs", p.FloorEnforced, p.NumCPU)
	}
}

func TestSmokeGate(t *testing.T) {
	rep, path := smokeOnce(t)

	// Gating a run against its own report passes. The loose -regress keeps
	// single-run scheduler noise out of this check — gate tightness is CI's
	// concern (best-of-N there), correctness of the pass path is ours.
	var stdout bytes.Buffer
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-regress", "2", "-baseline", path}, &stdout, io.Discard); code != 0 {
		t.Fatalf("self-gate failed: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "gate passed") {
		t.Fatalf("no gate verdict in output: %s", stdout.String())
	}

	// A baseline claiming a much faster normalized time trips the gate.
	fast := rep
	fast.Normalized = rep.Normalized / 10
	writeBaseline(t, path, fast)
	var stderr bytes.Buffer
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, &stderr); code != 1 {
		t.Fatalf("regression not caught (exit %d): %s", 0, stderr.String())
	}
	if !strings.Contains(stderr.String(), "over baseline") {
		t.Fatalf("unexpected gate error: %s", stderr.String())
	}

	// A clique-count drift is a correctness failure regardless of timing.
	wrong := rep
	wrong.Cliques++
	writeBaseline(t, path, wrong)
	stderr.Reset()
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, &stderr); code != 1 {
		t.Fatal("clique-count drift not caught")
	}
	if !strings.Contains(stderr.String(), "correctness regression") {
		t.Fatalf("unexpected gate error: %s", stderr.String())
	}

	// A baseline for a different workload refuses to gate at all.
	other := rep
	other.Graph.Seed++
	writeBaseline(t, path, other)
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, io.Discard); code != 1 {
		t.Fatal("workload mismatch not caught")
	}

	// A dense-block digest drift is a determinism regression.
	drift := rep
	drift.Parallel.Digest = "0000000000000000"
	writeBaseline(t, path, drift)
	stderr.Reset()
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, &stderr); code != 1 {
		t.Fatal("digest drift not caught")
	}
	if !strings.Contains(stderr.String(), "determinism regression") {
		t.Fatalf("unexpected gate error: %s", stderr.String())
	}

	// A dense-block clique-count drift is a correctness regression.
	pdrift := rep
	pdrift.Parallel.Cliques++
	writeBaseline(t, path, pdrift)
	stderr.Reset()
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, &stderr); code != 1 {
		t.Fatal("dense clique-count drift not caught")
	}
	if !strings.Contains(stderr.String(), "correctness regression") {
		t.Fatalf("unexpected gate error: %s", stderr.String())
	}

	// A baseline recorded from a different dense scenario refuses to gate.
	pident := rep
	pident.Parallel.Workers++
	writeBaseline(t, path, pident)
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, io.Discard); code != 1 {
		t.Fatal("dense scenario identity mismatch not caught")
	}
}

func writeBaseline(t *testing.T, path string, rep smokeReport) {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeBadInputs(t *testing.T) {
	if code := run([]string{"-smoke", "-smoke-runs", "0"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("-smoke-runs 0 exit = %d, want 2", code)
	}
	if code := run([]string{"-smoke", "-regress", "-1"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("-regress -1 exit = %d, want 2", code)
	}
	if code := run([]string{"-smoke", "-par-floor", "0"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("-par-floor 0 exit = %d, want 2", code)
	}
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", "/no/such/file.json"}, io.Discard, io.Discard); code != 1 {
		t.Errorf("missing baseline exit = %d, want 1", code)
	}
}
