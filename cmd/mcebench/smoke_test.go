package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeOnce runs the smoke mode with one timed run (plenty for correctness;
// CI uses best-of-N) and returns the parsed report.
func smokeOnce(t *testing.T, extra ...string) (smokeReport, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "smoke.json")
	args := append([]string{"-smoke", "-smoke-runs", "1", "-out", path}, extra...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("smoke exit %d: %s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep smokeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, data)
	}
	return rep, path
}

func TestSmokeReport(t *testing.T) {
	rep, _ := smokeOnce(t)
	if rep.Schema != smokeSchema {
		t.Errorf("schema = %d, want %d", rep.Schema, smokeSchema)
	}
	if rep.Cliques <= 0 || rep.BestWallNs <= 0 || rep.CalibNs <= 0 || rep.Normalized <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	// The instrumented run populates the artifact's telemetry section.
	if rep.Telemetry.BlocksBuilt == 0 || rep.Telemetry.RecursionNodes == 0 {
		t.Fatalf("telemetry section empty: %+v", rep.Telemetry)
	}
	if rep.Telemetry.CliquesFound-rep.Telemetry.HubCliquesFiltered != int64(rep.Cliques) {
		t.Fatalf("telemetry cliques %d−%d disagree with report %d",
			rep.Telemetry.CliquesFound, rep.Telemetry.HubCliquesFiltered, rep.Cliques)
	}
}

func TestSmokeGate(t *testing.T) {
	rep, path := smokeOnce(t)

	// Gating a run against its own report passes.
	var stdout bytes.Buffer
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, &stdout, io.Discard); code != 0 {
		t.Fatalf("self-gate failed: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "gate passed") {
		t.Fatalf("no gate verdict in output: %s", stdout.String())
	}

	// A baseline claiming a much faster normalized time trips the gate.
	fast := rep
	fast.Normalized = rep.Normalized / 10
	writeBaseline(t, path, fast)
	var stderr bytes.Buffer
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, &stderr); code != 1 {
		t.Fatalf("regression not caught (exit %d): %s", 0, stderr.String())
	}
	if !strings.Contains(stderr.String(), "over baseline") {
		t.Fatalf("unexpected gate error: %s", stderr.String())
	}

	// A clique-count drift is a correctness failure regardless of timing.
	wrong := rep
	wrong.Cliques++
	writeBaseline(t, path, wrong)
	stderr.Reset()
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, &stderr); code != 1 {
		t.Fatal("clique-count drift not caught")
	}
	if !strings.Contains(stderr.String(), "correctness regression") {
		t.Fatalf("unexpected gate error: %s", stderr.String())
	}

	// A baseline for a different workload refuses to gate at all.
	other := rep
	other.Graph.Seed++
	writeBaseline(t, path, other)
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", path}, io.Discard, io.Discard); code != 1 {
		t.Fatal("workload mismatch not caught")
	}
}

func writeBaseline(t *testing.T, path string, rep smokeReport) {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeBadInputs(t *testing.T) {
	if code := run([]string{"-smoke", "-smoke-runs", "0"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("-smoke-runs 0 exit = %d, want 2", code)
	}
	if code := run([]string{"-smoke", "-regress", "-1"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("-regress -1 exit = %d, want 2", code)
	}
	if code := run([]string{"-smoke", "-smoke-runs", "1", "-baseline", "/no/such/file.json"}, io.Discard, io.Discard); code != 1 {
		t.Errorf("missing baseline exit = %d, want 1", code)
	}
}
