package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var outB, errB bytes.Buffer
	code := run(args, &outB, &errB)
	return code, outB.String(), errB.String()
}

func TestListShowsEveryExperiment(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("list: code %d", code)
	}
	for _, id := range []string{"t1", "t2", "t3", "f3", "f4", "f6", "f7", "f8", "f9", "f10", "f11", "x1", "x2", "x3", "x4", "x5", "a1"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	code, _, errs := runCmd(t, "-exp", "nope")
	if code != 2 || !strings.Contains(errs, "unknown experiment") {
		t.Fatalf("code=%d errs=%q", code, errs)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd(t, "-zzz"); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

func TestRunX2IsFastAndCorrect(t *testing.T) {
	// x2 (the hard chain) is the cheapest experiment; run it end to end.
	code, out, errs := runCmd(t, "-exp", "x2")
	if code != 0 {
		t.Fatalf("x2: code=%d errs=%q", code, errs)
	}
	for _, want := range []string{"n=50", "iterations=46", "done in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("x2 output misses %q:\n%s", want, out)
		}
	}
}

func TestRunT3(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset builds are slow")
	}
	code, out, _ := runCmd(t, "-exp", "t3")
	if code != 0 || !strings.Contains(out, "twitter1") {
		t.Fatalf("t3 output:\n%s", out)
	}
}
