module mce

go 1.22
